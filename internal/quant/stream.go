package quant

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Streaming frame codec: the same wire format as Encode/Decode (docs/WIRE.md),
// produced and consumed incrementally through io.Writer/io.Reader. Chunk
// frames are self-delimiting — the 14-byte header fixes n/chunk/bits, and
// every chunk's size follows in closed form — so a frame can be emitted or
// parsed one chunk at a time with O(chunk) working memory instead of
// materializing the whole payload. This is what lets the fldist parameter
// server stream pull bodies straight into http.ResponseWriter and decode push
// bodies chunk-by-chunk under MaxBytesReader. No protocol change: a streamed
// frame is byte-identical to Encode(QuantizeChunks(v, bits, chunk)).

// scratchPool recycles the per-chunk byte buffers of the streaming codec, so
// a steady-state server encodes and decodes frames with near-zero allocation.
var scratchPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// getScratch returns a pooled byte slice of length n.
func getScratch(n int) *[]byte {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratch(p *[]byte) { scratchPool.Put(p) }

// StreamEncoder emits one quantized frame incrementally: the header at
// construction, then one chunk per WriteChunk call in order. The output is
// byte-identical to Encode(QuantizeChunks(v, bits, chunk)) over the
// concatenation of the WriteChunk inputs.
type StreamEncoder struct {
	w     io.Writer
	bits  int
	chunk int
	n     int
	done  int // values written so far
	hdr   [frameHeaderSize + 8]byte
}

// NewStreamEncoder writes the frame header for an n-value vector quantized at
// the given bits/chunk and returns an encoder for its chunks.
func NewStreamEncoder(w io.Writer, bits, chunk, n int) (*StreamEncoder, error) {
	if bits < 2 || bits > 8 {
		return nil, fmt.Errorf("quant: stream encoder bits %d outside [2,8]", bits)
	}
	if chunk < 1 {
		return nil, fmt.Errorf("quant: stream encoder chunk %d must be ≥ 1", chunk)
	}
	if n < 0 || n > math.MaxUint32 {
		return nil, fmt.Errorf("quant: stream encoder n %d outside [0,2^32)", n)
	}
	e := &StreamEncoder{w: w, bits: bits, chunk: chunk, n: n}
	hdr := appendHeader(e.hdr[:0], bits, n, chunk)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("quant: stream encoder header: %w", err)
	}
	return e, nil
}

// NextLen returns the value count of the next chunk to write, 0 when the
// frame is complete.
func (e *StreamEncoder) NextLen() int {
	if e.done >= e.n {
		return 0
	}
	if rem := e.n - e.done; rem < e.chunk {
		return rem
	}
	return e.chunk
}

// WriteChunk quantizes vals — which must be exactly the next NextLen() values
// of the vector — and writes the chunk's scale and packed codes. If deq is
// non-nil it must have len(vals) and receives the dequantized values (what a
// decoder will reconstruct), letting callers compute error-feedback residuals
// without a second pass.
func (e *StreamEncoder) WriteChunk(vals, deq []float64) error {
	want := e.NextLen()
	if want == 0 {
		return fmt.Errorf("quant: WriteChunk past the end of a %d-value frame", e.n)
	}
	if len(vals) != want {
		return fmt.Errorf("quant: WriteChunk got %d values, next chunk holds %d", len(vals), want)
	}
	if deq != nil && len(deq) != len(vals) {
		return fmt.Errorf("quant: WriteChunk deq length %d, want %d", len(deq), len(vals))
	}
	scale := chunkScale(vals, e.bits)
	nb := codeBytes(len(vals), e.bits)
	buf := getScratch(8 + nb)
	defer putScratch(buf)
	binary.LittleEndian.PutUint64((*buf)[:8], math.Float64bits(scale))
	codes := (*buf)[8:]
	for i := range codes {
		codes[i] = 0
	}
	packCodes(codes, vals, scale, e.bits)
	if _, err := e.w.Write(*buf); err != nil {
		return fmt.Errorf("quant: stream encoder chunk: %w", err)
	}
	if deq != nil {
		unpackCodes(deq, codes, scale, e.bits)
	}
	e.done += len(vals)
	return nil
}

// Close verifies the full vector was written. It does not close the
// underlying writer.
func (e *StreamEncoder) Close() error {
	if e.done != e.n {
		return fmt.Errorf("quant: stream encoder closed after %d of %d values", e.done, e.n)
	}
	return nil
}

// EncodeStream writes v as one quantized frame to w via the streaming
// encoder. If deq is non-nil (len(v)), it receives the dequantized
// reconstruction. The bytes written are identical to
// Encode(QuantizeChunks(v, bits, chunk)).
func EncodeStream(w io.Writer, v []float64, bits, chunk int, deq []float64) error {
	e, err := NewStreamEncoder(w, bits, chunk, len(v))
	if err != nil {
		return err
	}
	off := 0
	for l := e.NextLen(); l > 0; l = e.NextLen() {
		var d []float64
		if deq != nil {
			d = deq[off : off+l]
		}
		if err := e.WriteChunk(v[off:off+l], d); err != nil {
			return err
		}
		off += l
	}
	return e.Close()
}

// rawBlock is how many float64 values a raw-frame stream decode reads per
// step; it bounds the scratch buffer exactly like chunk does for quantized
// frames.
const rawBlock = 512

// StreamDecoder consumes one frame incrementally from an io.Reader: the
// header at construction, then one block of values per Next call. Structural
// violations return errors wrapping ErrCodec, exactly as Decode does, and the
// decoder never reads past the end of its frame — trailing bytes stay in r.
type StreamDecoder struct {
	r      io.Reader
	bits   int
	chunk  int
	n      int
	done   int
	sparse bool
}

// NewStreamDecoder reads and validates a frame header from r.
func NewStreamDecoder(r io.Reader) (*StreamDecoder, error) {
	d := &StreamDecoder{}
	if err := d.Reset(r); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-initializes the decoder onto a new frame from r, reading and
// validating its header, so callers can pool decoders across frames instead
// of allocating one per frame.
func (d *StreamDecoder) Reset(r io.Reader) error {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: reading header: %v", ErrCodec, err)
	}
	if string(hdr[:4]) != frameMagic {
		return fmt.Errorf("%w: magic %q, want %q", ErrCodec, hdr[:4], frameMagic)
	}
	if hdr[4] != frameVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrCodec, hdr[4], frameVersion)
	}
	d.r = r
	d.bits = int(hdr[5])
	d.n = int(binary.LittleEndian.Uint32(hdr[6:10]))
	d.chunk = int(binary.LittleEndian.Uint32(hdr[10:14]))
	d.done = 0
	d.sparse = d.bits&sparseFlag != 0
	if d.sparse {
		d.bits &^= sparseFlag
		if d.bits < 2 || d.bits > 8 {
			return fmt.Errorf("%w: sparse bits %d outside [2,8]", ErrCodec, d.bits)
		}
		if d.chunk < 1 {
			return fmt.Errorf("%w: sparse frame with chunk %d", ErrCodec, d.chunk)
		}
		return nil
	}
	if d.bits == RawBits {
		if d.chunk != 0 {
			return fmt.Errorf("%w: raw frame with chunk %d", ErrCodec, d.chunk)
		}
		return nil
	}
	if d.bits < 2 || d.bits > 8 {
		return fmt.Errorf("%w: bits %d outside {0, 2..8}", ErrCodec, d.bits)
	}
	if d.chunk < 1 {
		return fmt.Errorf("%w: quantized frame with chunk %d", ErrCodec, d.chunk)
	}
	return nil
}

// Bits returns the frame's code width (RawBits for an exact float64 frame).
func (d *StreamDecoder) Bits() int { return d.bits }

// Chunk returns the frame's values-per-scale count (0 for raw frames).
func (d *StreamDecoder) Chunk() int { return d.chunk }

// Len returns the total number of float64 values the frame carries.
func (d *StreamDecoder) Len() int { return d.n }

// IsRaw reports whether the frame carries exact float64 values.
func (d *StreamDecoder) IsRaw() bool { return d.bits == RawBits && !d.sparse }

// IsSparse reports whether the frame is the sparse top-k form. Sparse frames
// are consumed whole via ApplySparse (or DecodeAll), not block-by-block —
// their occupied chunks are not knowable from the header alone.
func (d *StreamDecoder) IsSparse() bool { return d.sparse }

// NextLen returns the value count of the next Next call's block: the next
// chunk for quantized frames, up to rawBlock values for raw frames, 0 once
// the frame is fully decoded. Sparse frames report 0 — use ApplySparse.
func (d *StreamDecoder) NextLen() int {
	if d.sparse {
		return 0
	}
	rem := d.n - d.done
	if rem <= 0 {
		return 0
	}
	step := d.chunk
	if d.IsRaw() {
		step = rawBlock
	}
	if rem < step {
		return rem
	}
	return step
}

// Next decodes the next block of values into dst, which must hold exactly
// NextLen() values. It returns io.EOF (with no values written) once the
// frame is complete.
func (d *StreamDecoder) Next(dst []float64) error {
	if d.sparse {
		return fmt.Errorf("quant: stream decoder Next on a sparse frame; use ApplySparse")
	}
	want := d.NextLen()
	if want == 0 {
		return io.EOF
	}
	if len(dst) != want {
		return fmt.Errorf("quant: stream decoder Next got %d-value dst, next block holds %d", len(dst), want)
	}
	if d.IsRaw() {
		buf := getScratch(8 * want)
		defer putScratch(buf)
		if _, err := io.ReadFull(d.r, *buf); err != nil {
			return fmt.Errorf("%w: raw payload: %v", ErrCodec, err)
		}
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64((*buf)[8*i:]))
		}
		d.done += want
		return nil
	}
	nb := codeBytes(want, d.bits)
	buf := getScratch(8 + nb)
	defer putScratch(buf)
	if _, err := io.ReadFull(d.r, *buf); err != nil {
		return fmt.Errorf("%w: quantized payload: %v", ErrCodec, err)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64((*buf)[:8]))
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		return fmt.Errorf("%w: chunk scale %v not a finite non-negative value", ErrCodec, scale)
	}
	unpackCodes(dst, (*buf)[8:], scale, d.bits)
	d.done += want
	return nil
}

// DecodeAll decodes the frame's remaining values into dst, which must hold
// exactly Len()−(values already decoded) values, block by block with pooled
// O(chunk) scratch. A sparse frame decodes as its dense materialization:
// stored values at their indices, exact zeros elsewhere.
func (d *StreamDecoder) DecodeAll(dst []float64) error {
	if len(dst) != d.n-d.done {
		return fmt.Errorf("quant: stream decoder DecodeAll got %d-value dst, frame has %d left",
			len(dst), d.n-d.done)
	}
	if d.sparse {
		for i := range dst {
			dst[i] = 0
		}
		return d.applySparse(dst)
	}
	off := 0
	for l := d.NextLen(); l > 0; l = d.NextLen() {
		if err := d.Next(dst[off : off+l]); err != nil {
			return err
		}
		off += l
	}
	return nil
}

// ApplySparse consumes a sparse frame, scatter-adding its stored dequantized
// values onto dst (which must hold Len() values) and leaving every unstored
// coordinate untouched — the error-feedback apply: pass the base vector in,
// get base + decoded delta out. Structural violations wrap ErrCodec, and the
// decoder's allocations stay proportional to the bytes actually read, so an
// adversarial header cannot force an oversized buffer.
func (d *StreamDecoder) ApplySparse(dst []float64) error {
	if !d.sparse {
		return fmt.Errorf("quant: ApplySparse on a non-sparse frame")
	}
	if d.done != 0 {
		return fmt.Errorf("quant: ApplySparse on a consumed frame")
	}
	if len(dst) != d.n {
		return fmt.Errorf("quant: ApplySparse got %d-value dst, frame has %d", len(dst), d.n)
	}
	return d.applySparse(dst)
}

// byteReaderAdapter lifts a plain io.Reader to io.ByteReader for varint
// decoding; buffered callers (the server wraps push bodies in bufio) hit the
// native ReadByte instead.
type byteReaderAdapter struct {
	r   io.Reader
	buf [1]byte
}

func (b *byteReaderAdapter) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}

// readUvarintCanonical decodes one canonical uvarint of at most 5 bytes —
// the streaming twin of uvarint32, with identical acceptance.
func readUvarintCanonical(br io.ByteReader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < 5; i++ {
		c, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: truncated varint: %v", ErrCodec, err)
		}
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, fmt.Errorf("%w: overlong varint", ErrCodec)
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("%w: varint longer than 5 bytes", ErrCodec)
}

func (d *StreamDecoder) applySparse(dst []float64) error {
	var cnt [4]byte
	if _, err := io.ReadFull(d.r, cnt[:]); err != nil {
		return fmt.Errorf("%w: sparse count: %v", ErrCodec, err)
	}
	k := int(binary.LittleEndian.Uint32(cnt[:]))
	if k > d.n {
		return fmt.Errorf("%w: sparse count %d exceeds n %d", ErrCodec, k, d.n)
	}
	br, ok := d.r.(io.ByteReader)
	if !ok {
		br = &byteReaderAdapter{r: d.r}
	}
	// Grow the index slice as varints arrive instead of trusting k upfront:
	// every stored index costs at least one wire byte, so memory stays
	// proportional to input actually read even under an adversarial count.
	var idx []uint32
	prev := 0
	for i := 0; i < k; i++ {
		x, err := readUvarintCanonical(br)
		if err != nil {
			return fmt.Errorf("sparse index %d: %w", i, err)
		}
		if i > 0 && x == 0 {
			return fmt.Errorf("%w: sparse index %d repeats its predecessor", ErrCodec, i)
		}
		if x > uint64(d.n) {
			return fmt.Errorf("%w: sparse index delta %d exceeds n %d", ErrCodec, x, d.n)
		}
		ix := prev + int(x)
		if i == 0 {
			ix = int(x)
		}
		if ix >= d.n {
			return fmt.Errorf("%w: sparse index %d outside [0,%d)", ErrCodec, ix, d.n)
		}
		idx = append(idx, uint32(ix))
		prev = ix
	}
	vals := make([]float64, 0, d.chunk)
	for i := 0; i < len(idx); {
		c := int(idx[i]) / d.chunk
		j := i + 1
		for j < len(idx) && int(idx[j])/d.chunk == c {
			j++
		}
		m := j - i
		nb := codeBytes(m, d.bits)
		buf := getScratch(8 + nb)
		if _, err := io.ReadFull(d.r, *buf); err != nil {
			putScratch(buf)
			return fmt.Errorf("%w: sparse chunk block: %v", ErrCodec, err)
		}
		scale := math.Float64frombits(binary.LittleEndian.Uint64((*buf)[:8]))
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			putScratch(buf)
			return fmt.Errorf("%w: sparse chunk scale %v not a finite non-negative value", ErrCodec, scale)
		}
		vals = vals[:m]
		unpackCodes(vals, (*buf)[8:], scale, d.bits)
		putScratch(buf)
		for t := 0; t < m; t++ {
			dst[idx[i+t]] += vals[t]
		}
		i = j
	}
	d.done = d.n
	return nil
}
