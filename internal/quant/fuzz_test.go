package quant

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at both decode paths. Invariants:
//
//   - neither path panics, whatever the input;
//   - every rejection wraps ErrCodec (callers branch on errors.Is);
//   - allocations stay proportional to the input (the large-frame guard
//     below only caps the *harness's* dense materialization — the decoders
//     themselves must bound allocation before trusting any header field);
//   - an accepted frame re-encodes byte-identically (canonical encoding);
//   - the streaming decoder accepts exactly what the buffered decoder
//     accepts, with identical values (modulo trailing bytes, which only the
//     strict buffered path polices).
//
// `make fuzz` runs this seeded corpus plus a short live-fuzz pass in CI.
func FuzzDecode(f *testing.F) {
	for _, b := range goldenFrames() {
		f.Add(b)
		f.Add(b[:len(b)-1])       // truncated payload
		f.Add(append(b, 0x7)[1:]) // sheared framing
	}
	sv, idx := goldenSparseInput()
	hostile := EncodeSparse(sv, idx, 2, 3, nil)
	f.Add(hostile)
	f.Add([]byte("FPQ1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrCodec) {
				t.Fatalf("Decode error does not wrap ErrCodec: %v", err)
			}
		} else {
			var re []byte
			switch {
			case fr.IsSparse():
				re = fr.Sparse.Encode()
			case fr.IsRaw():
				re = EncodeRaw(fr.Raw)
			default:
				re = Encode(fr.Q)
			}
			if !bytes.Equal(re, b) {
				t.Fatalf("accepted frame re-encodes differently (%d → %d bytes)", len(b), len(re))
			}
		}

		d, serr := NewStreamDecoder(bytes.NewReader(b))
		if serr != nil {
			if !errors.Is(serr, ErrCodec) {
				t.Fatalf("stream header error does not wrap ErrCodec: %v", serr)
			}
			if err == nil {
				t.Fatalf("buffered path accepted a frame the stream header rejects: %v", serr)
			}
			return
		}
		if d.Len() > 1<<22 {
			// Materializing n values densely is the harness's cost, not the
			// decoder's, so skip the dense value comparison for huge n. Only
			// a sparse frame can legitimately be accepted at this size from
			// a short input — dense and raw payloads must carry ~n bytes,
			// while a sparse frame's size scales with k, not n — so anything
			// non-sparse accepted here is an over-trusting header parse.
			if err == nil {
				if !fr.IsSparse() {
					t.Fatalf("buffered path accepted a non-sparse %d-value frame from %d bytes", d.Len(), len(b))
				}
				if !d.IsSparse() || d.Len() != fr.Sparse.N ||
					d.Bits() != fr.Sparse.Bits || d.Chunk() != fr.Sparse.Chunk {
					t.Fatalf("stream header (sparse=%v n=%d bits=%d chunk=%d) disagrees with accepted sparse frame (n=%d bits=%d chunk=%d)",
						d.IsSparse(), d.Len(), d.Bits(), d.Chunk(),
						fr.Sparse.N, fr.Sparse.Bits, fr.Sparse.Chunk)
				}
			}
			return
		}
		dst := make([]float64, d.Len())
		derr := d.DecodeAll(dst)
		if derr != nil && !errors.Is(derr, ErrCodec) {
			t.Fatalf("stream decode error does not wrap ErrCodec: %v", derr)
		}
		if err == nil {
			if derr != nil {
				t.Fatalf("stream path rejected a frame the buffered path accepts: %v", derr)
			}
			if !reflect.DeepEqual(dst, fr.Vector()) {
				t.Fatal("stream and buffered decodes disagree on values")
			}
		}
	})
}
