package quant

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// segVec builds a deterministic vector with outliers, exact zeros and a
// degenerate all-zero chunk region so every scale path is exercised.
func segVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		switch {
		case i%97 == 0:
			v[i] = 50 * rng.NormFloat64() // outlier
		case i >= 128 && i < 192:
			v[i] = 0 // a run of zeros spanning chunk boundaries
		default:
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

// The golden-bytes pin of the tentpole: a frame assembled from concurrently
// encoded chunk-aligned segments is byte-identical to the sequential
// EncodeStream output (which is itself pinned byte-identical to
// Encode(QuantizeChunks(...)) in stream_test.go), for ragged and exact
// chunkings, at segment counts {1, 4, 8} and GOMAXPROCS {1, 4} — and the
// per-segment dequantized values match the sequential ones exactly.
func TestSegmentStitchGoldenBytes(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	cases := []struct {
		n, chunk, bits int
	}{
		{1003, 64, 8}, // ragged tail
		{1024, 64, 4}, // exact chunking
		{1003, 64, 2},
		{100, 256, 8}, // single short chunk
		{7, 3, 5},     // odd everything
		{0, 16, 8},    // empty vector
	}
	for _, tc := range cases {
		v := segVec(tc.n, int64(tc.n+tc.chunk+tc.bits))
		var want bytes.Buffer
		wantDeq := make([]float64, tc.n)
		if err := EncodeStream(&want, v, tc.bits, tc.chunk, wantDeq); err != nil {
			t.Fatalf("n=%d chunk=%d bits=%d: EncodeStream: %v", tc.n, tc.chunk, tc.bits, err)
		}
		for _, procs := range []int{1, 4} {
			runtime.GOMAXPROCS(procs)
			for _, segs := range []int{1, 4, 8} {
				bounds := SegmentBounds(tc.n, tc.chunk, segs)
				if bounds[0] != 0 || bounds[len(bounds)-1] != tc.n {
					t.Fatalf("bounds %v do not cover [0,%d]", bounds, tc.n)
				}
				body := make([]byte, FrameBytes(tc.n, tc.chunk, tc.bits))
				if err := PutFrameHeader(body[:FrameHeaderSize], tc.bits, tc.n, tc.chunk); err != nil {
					t.Fatal(err)
				}
				deq := make([]float64, tc.n)
				var wg sync.WaitGroup
				errs := make([]error, len(bounds)-1)
				for k := 0; k+1 < len(bounds); k++ {
					lo, hi := bounds[k], bounds[k+1]
					wg.Add(1)
					go func(k, lo, hi int) {
						defer wg.Done()
						blo := FrameHeaderSize + SegmentBytes(lo, tc.chunk, tc.bits)
						bhi := FrameHeaderSize + SegmentBytes(hi, tc.chunk, tc.bits)
						errs[k] = EncodeSegmentInto(body[blo:bhi], v[lo:hi], tc.bits, tc.chunk, deq[lo:hi])
					}(k, lo, hi)
				}
				wg.Wait()
				for k, err := range errs {
					if err != nil {
						t.Fatalf("segment %d: %v", k, err)
					}
				}
				if !bytes.Equal(body, want.Bytes()) {
					t.Fatalf("n=%d chunk=%d bits=%d segs=%d procs=%d: stitched frame differs from sequential encode",
						tc.n, tc.chunk, tc.bits, segs, procs)
				}
				for i := range deq {
					if deq[i] != wantDeq[i] {
						t.Fatalf("n=%d chunk=%d bits=%d segs=%d: deq[%d] = %v, want %v (not bit-identical)",
							tc.n, tc.chunk, tc.bits, segs, i, deq[i], wantDeq[i])
					}
				}
			}
		}
	}
}

// SegmentBounds must produce chunk-aligned interior boundaries and clamp the
// segment count.
func TestSegmentBoundsAlignment(t *testing.T) {
	for _, tc := range []struct {
		n, chunk, segs int
	}{
		{1003, 64, 4}, {1003, 64, 100}, {5, 8, 3}, {0, 4, 4}, {256, 256, 8},
	} {
		bounds := SegmentBounds(tc.n, tc.chunk, tc.segs)
		if bounds[0] != 0 || bounds[len(bounds)-1] != tc.n {
			t.Fatalf("%+v: bounds %v do not span [0,%d]", tc, bounds, tc.n)
		}
		for i := 1; i < len(bounds)-1; i++ {
			if bounds[i]%tc.chunk != 0 {
				t.Fatalf("%+v: interior boundary %d not chunk-aligned", tc, bounds[i])
			}
			if bounds[i] < bounds[i-1] {
				t.Fatalf("%+v: bounds %v not monotone", tc, bounds)
			}
		}
		if got := len(bounds) - 1; got > tc.segs || (tc.n > 0 && got < 1) {
			t.Fatalf("%+v: %d segments", tc, got)
		}
	}
}

// Structural misuse must error, not corrupt: wrong dst size, wrong deq size,
// bad bits/chunk.
func TestEncodeSegmentIntoValidation(t *testing.T) {
	v := segVec(100, 1)
	if err := EncodeSegmentInto(make([]byte, 10), v, 8, 64, nil); err == nil {
		t.Fatal("wrong dst size accepted")
	}
	if err := EncodeSegmentInto(make([]byte, SegmentBytes(100, 64, 8)), v, 8, 64, make([]float64, 5)); err == nil {
		t.Fatal("wrong deq size accepted")
	}
	if err := EncodeSegmentInto(nil, nil, 1, 64, nil); err == nil {
		t.Fatal("bits=1 accepted")
	}
	if err := EncodeSegmentInto(nil, nil, 8, 0, nil); err == nil {
		t.Fatal("chunk=0 accepted")
	}
	if err := PutFrameHeader(make([]byte, 3), 8, 100, 64); err == nil {
		t.Fatal("short header dst accepted")
	}
	if _, err := EncodeSegment(v, 8, 64, nil); err != nil {
		t.Fatalf("EncodeSegment: %v", err)
	}
}
