package quant

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Sparse frame form: top-k sparsification compounds with chunk quantization.
//
// Most of a per-round update's mass sits in few coordinates, so a client (or
// the server's delta downlink) can ship only the k largest-magnitude values
// and let error feedback carry the rest into the next round. The sparse form
// reuses the FPQ1 header with the high bit of the bits byte set — a receiver
// that predates it sees bits outside {0, 2..8} and rejects the frame instead
// of misparsing it:
//
//	[0:4)   magic "FPQ1"
//	[4:5)   version (1)
//	[5:6)   0x80 | bits, bits in 2..8 — the code width of stored values
//	[6:10)  n, uint32 LE — the dense vector length
//	[10:14) chunk, uint32 LE — values per scale, as in dense frames
//	[14:18) k, uint32 LE — number of stored coordinates, k ≤ n
//	[18:)   k uvarint index deltas: the first is idx[0] itself, each later
//	        one is idx[i]−idx[i−1] (≥ 1, indices strictly increasing, < n).
//	        Varints are canonical (no overlong forms) and at most 5 bytes.
//	then    per *occupied* chunk in ascending chunk order: float64 LE scale
//	        fitted to that chunk's stored values only, then
//	        ceil(m·bits/8) packed code bytes for its m stored values
//	        (each occupied chunk starts on a fresh byte boundary)
//
// Unstored coordinates decode to exactly zero, so applying a sparse frame is
// a scatter-add. docs/WIRE.md specifies the layout byte-for-byte and the
// golden vectors under testdata/ pin reference bytes for non-Go clients.

// sparseFlag marks a sparse frame in the header's bits byte.
const sparseFlag = 0x80

// SparseVec is a decoded sparse frame: k stored coordinates of an n-value
// vector, chunk-quantized with one scale per occupied chunk.
type SparseVec struct {
	Bits  int // code width of stored values, 2..8
	Chunk int // values per scale, ≥ 1
	N     int // dense vector length
	// Idx holds the stored coordinates, strictly increasing, in [0, N).
	Idx []int
	// Scales holds one scale per occupied chunk, in ascending chunk order —
	// len(Scales) occupied chunks, each fitted to its stored values only.
	Scales []float64
	// Codes are the packed two's-complement codes of the stored values,
	// grouped per occupied chunk with each group starting on a byte boundary.
	Codes []byte
}

// Len returns the dense vector length the frame describes.
func (s *SparseVec) Len() int { return s.N }

// AddTo scatter-adds the stored dequantized values onto dst, which must hold
// N values. Unstored coordinates are untouched — this is the error-feedback
// apply: dst starts as the base vector and ends as base + decoded delta.
func (s *SparseVec) AddTo(dst []float64) {
	if len(dst) != s.N {
		panic(fmt.Sprintf("quant: SparseVec.AddTo dst has %d values, want %d", len(dst), s.N))
	}
	vals := make([]float64, 0, s.Chunk)
	si, off := 0, 0
	for i := 0; i < len(s.Idx); {
		j := groupEnd(s.Idx, i, s.Chunk)
		m := j - i
		nb := codeBytes(m, s.Bits)
		vals = vals[:m]
		unpackCodes(vals, s.Codes[off:off+nb], s.Scales[si], s.Bits)
		for t := 0; t < m; t++ {
			dst[s.Idx[i+t]] += vals[t]
		}
		si++
		off += nb
		i = j
	}
}

// Dequantize reconstructs the dense vector: stored values at their indices,
// exact zeros elsewhere.
func (s *SparseVec) Dequantize() []float64 {
	out := make([]float64, s.N)
	s.AddTo(out)
	return out
}

// Encode re-serializes the sparse vector into its wire frame. Decoding and
// re-encoding a valid sparse frame is byte-identical (varints are canonical).
func (s *SparseVec) Encode() []byte {
	buf := make([]byte, 0, frameHeaderSize+sparsePayloadSize(s.Idx, s.Chunk, s.Bits))
	buf = appendHeader(buf, sparseFlag|s.Bits, s.N, s.Chunk)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Idx)))
	prev := 0
	for _, ix := range s.Idx {
		buf = binary.AppendUvarint(buf, uint64(ix-prev))
		prev = ix
	}
	si, off := 0, 0
	for i := 0; i < len(s.Idx); {
		j := groupEnd(s.Idx, i, s.Chunk)
		nb := codeBytes(j-i, s.Bits)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Scales[si]))
		buf = append(buf, s.Codes[off:off+nb]...)
		si++
		off += nb
		i = j
	}
	return buf
}

// Bytes returns the serialized frame size, len(Encode()).
func (s *SparseVec) Bytes() int {
	return frameHeaderSize + sparsePayloadSize(s.Idx, s.Chunk, s.Bits)
}

// groupEnd returns the end of the run of indices sharing idx[i]'s chunk.
func groupEnd(idx []int, i, chunk int) int {
	c := idx[i] / chunk
	j := i + 1
	for j < len(idx) && idx[j]/chunk == c {
		j++
	}
	return j
}

// finiteNonzero reports whether x is a finite value other than exact zero —
// the only coordinates worth storing in a sparse frame.
func finiteNonzero(x float64) bool {
	return x != 0 && !math.IsInf(x, 0) && !math.IsNaN(x)
}

// TopKIndices returns the indices of the k largest-magnitude values of v in
// ascending index order. Selection is deterministic: the threshold is the
// k-th largest magnitude, every strictly larger value is taken, and ties at
// the threshold are broken by ascending index. Exact zeros (and non-finite
// values) are never selected, so fewer than k indices may be returned; k ≤ 0
// returns nil. The result feeds EncodeSparse/AppendSparse unchanged.
func TopKIndices(v []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	nz := 0
	for _, x := range v {
		if finiteNonzero(x) {
			nz++
		}
	}
	if nz == 0 {
		return nil
	}
	if k >= nz {
		idx := make([]int, 0, nz)
		for i, x := range v {
			if finiteNonzero(x) {
				idx = append(idx, i)
			}
		}
		return idx
	}
	mags := make([]float64, 0, nz)
	for _, x := range v {
		if finiteNonzero(x) {
			mags = append(mags, math.Abs(x))
		}
	}
	t := kthLargest(mags, k)
	greater := 0
	for _, a := range mags {
		if a > t {
			greater++
		}
	}
	need := k - greater // ties at the threshold to take, by ascending index
	idx := make([]int, 0, k)
	ties := make([]int, 0, need)
	for i, x := range v {
		if !finiteNonzero(x) {
			continue
		}
		if a := math.Abs(x); a > t {
			idx = append(idx, i)
		} else if a == t && len(ties) < need {
			ties = append(ties, i)
		}
	}
	idx = append(idx, ties...)
	sort.Ints(idx)
	return idx
}

// kthLargest returns the k-th largest value of a (1 ≤ k ≤ len(a)) by
// in-place quickselect. The result is a pure function of the multiset, so
// callers stay deterministic regardless of pivot luck.
func kthLargest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	want := k - 1 // index in descending order
	for lo < hi {
		p := partitionDesc(a, lo, hi)
		switch {
		case p == want:
			return a[p]
		case p < want:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return a[lo]
}

// partitionDesc partitions a[lo:hi+1] descending around a median-of-three
// pivot and returns the pivot's final position.
func partitionDesc(a []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if a[mid] > a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] > a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] > a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi] = a[hi], a[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if a[j] > pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi] = a[hi], a[i]
	return i
}

// uvarintLen returns the canonical varint byte length of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// uvarint32 decodes one canonical uvarint of at most 5 bytes (enough for any
// uint32-range value) from b, returning the value and bytes consumed. It
// rejects truncated input, overlong (non-canonical) encodings, and varints
// longer than 5 bytes — all as errors wrapping ErrCodec.
func uvarint32(b []byte) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < len(b) && i < 5; i++ {
		c := b[i]
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, 0, fmt.Errorf("%w: overlong varint", ErrCodec)
			}
			return x | uint64(c)<<s, i + 1, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	if len(b) >= 5 {
		return 0, 0, fmt.Errorf("%w: varint longer than 5 bytes", ErrCodec)
	}
	return 0, 0, fmt.Errorf("%w: truncated varint", ErrCodec)
}

// checkSparseIdx panics unless idx is strictly increasing within [0, n) —
// the encoder-side structural contract (TopKIndices always satisfies it).
func checkSparseIdx(idx []int, n int) {
	prev := -1
	for _, ix := range idx {
		if ix <= prev || ix >= n {
			panic(fmt.Sprintf("quant: sparse index %d out of order or outside [0,%d)", ix, n))
		}
		prev = ix
	}
}

// sparsePayloadSize returns the payload size (k field + index varints +
// per-occupied-chunk scale and codes) of a sparse frame storing idx.
func sparsePayloadSize(idx []int, chunk, bits int) int {
	sz := 4
	prev := 0
	for _, ix := range idx {
		sz += uvarintLen(uint64(ix - prev))
		prev = ix
	}
	for i := 0; i < len(idx); {
		j := groupEnd(idx, i, chunk)
		sz += 8 + codeBytes(j-i, bits)
		i = j
	}
	return sz
}

// SparseFrameBytes returns the full encoded frame size of a sparse frame
// storing idx at the given codec parameters — len(EncodeSparse(...)) without
// encoding. Serve-plane builders use it to allocate exact-size bodies.
func SparseFrameBytes(idx []int, chunk, bits int) int {
	return frameHeaderSize + sparsePayloadSize(idx, chunk, bits)
}

// PutSparseFrameHeader writes the sparse frame header plus the k field into
// dst, which must be exactly FrameHeaderSize+4 bytes — the prefix before the
// payload ranges that EncodeSparseSegmentInto fills. The bits argument is
// the base code width; the wire flag bit is set here.
func PutSparseFrameHeader(dst []byte, bits, n, chunk, k int) error {
	if len(dst) != frameHeaderSize+4 {
		return fmt.Errorf("quant: PutSparseFrameHeader dst %d bytes, want %d", len(dst), frameHeaderSize+4)
	}
	if bits < 2 || bits > 8 {
		return fmt.Errorf("quant: PutSparseFrameHeader bits %d outside [2,8]", bits)
	}
	if chunk < 1 {
		return fmt.Errorf("quant: PutSparseFrameHeader chunk %d must be ≥ 1", chunk)
	}
	if n < 0 || n > math.MaxUint32 {
		return fmt.Errorf("quant: PutSparseFrameHeader n %d outside [0,2^32)", n)
	}
	if k < 0 || k > n {
		return fmt.Errorf("quant: PutSparseFrameHeader k %d outside [0,%d]", k, n)
	}
	appendHeader(dst[:0], sparseFlag|bits, n, chunk)
	binary.LittleEndian.PutUint32(dst[frameHeaderSize:], uint32(k))
	return nil
}

// SparseSegment describes one chunk-aligned piece of a sparse frame for the
// segment-parallel encoder: the index sub-range it owns and the byte offsets
// of its varint run and its chunk-block run inside the frame payload (the
// bytes after the 14-byte header). Segments own disjoint byte ranges, so S
// goroutines can encode into one buffer — same contract as EncodeSegmentInto.
type SparseSegment struct {
	ILo, IHi int // sub-range of the selected index slice
	VarOff   int // payload offset of this segment's index varints
	BlockOff int // payload offset of this segment's chunk blocks
}

// SparseSegments splits the selected indices along the chunk-aligned value
// bounds produced by SegmentBounds (offsets [0, b₁, …, n]) and returns each
// segment's index sub-range and closed-form payload byte offsets. Because
// every boundary is chunk-aligned, no occupied chunk straddles two segments,
// and because index deltas restart from the previous segment's last index,
// the concatenation of segment encodings is byte-identical to the sequential
// AppendSparse output (TestSparseSegmentStitchIdentity pins it). Panics on a
// structurally invalid index slice, like Encode.
func SparseSegments(idx []int, bounds []int, chunk, bits int) []SparseSegment {
	n := bounds[len(bounds)-1]
	checkSparseIdx(idx, n)
	segs := make([]SparseSegment, len(bounds)-1)
	varBytes := make([]int, len(segs))
	blockBytes := make([]int, len(segs))
	i := 0
	prev := 0
	for s := range segs {
		segs[s].ILo = i
		for i < len(idx) && idx[i] < bounds[s+1] {
			varBytes[s] += uvarintLen(uint64(idx[i] - prev))
			prev = idx[i]
			i++
		}
		segs[s].IHi = i
		for t := segs[s].ILo; t < i; {
			j := groupEnd(idx, t, chunk)
			blockBytes[s] += 8 + codeBytes(j-t, bits)
			t = j
		}
	}
	varOff := 4
	for s := range segs {
		segs[s].VarOff = varOff
		varOff += varBytes[s]
	}
	blockOff := varOff
	for s := range segs {
		segs[s].BlockOff = blockOff
		blockOff += blockBytes[s]
	}
	return segs
}

// EncodeSparseSegmentInto encodes one segment's index varints and chunk
// blocks into its disjoint ranges of payload (the sparse frame's bytes after
// the header; the caller writes the header and the k field). v is the full
// dense vector and idx the full selected index slice — the segment touches
// only idx[ILo:IHi]. If deq is non-nil it must have len(idx); deq[j] receives
// the dequantized value of idx[j] for j in [ILo, IHi), the per-coordinate
// reconstruction error feedback subtracts. Safe to call concurrently for the
// segments of one SparseSegments partition.
func EncodeSparseSegmentInto(payload []byte, v []float64, idx []int, seg SparseSegment, bits, chunk int, deq []float64) error {
	if bits < 2 || bits > 8 {
		return fmt.Errorf("quant: sparse segment encoder bits %d outside [2,8]", bits)
	}
	if chunk < 1 {
		return fmt.Errorf("quant: sparse segment encoder chunk %d must be ≥ 1", chunk)
	}
	if deq != nil && len(deq) != len(idx) {
		return fmt.Errorf("quant: sparse segment encoder deq length %d, want %d", len(deq), len(idx))
	}
	off := seg.VarOff
	prev := 0
	if seg.ILo > 0 {
		prev = idx[seg.ILo-1]
	}
	for i := seg.ILo; i < seg.IHi; i++ {
		off += binary.PutUvarint(payload[off:], uint64(idx[i]-prev))
		prev = idx[i]
	}
	vals := make([]float64, 0, chunk)
	boff := seg.BlockOff
	for i := seg.ILo; i < seg.IHi; {
		j := groupEnd(idx, i, chunk)
		m := j - i
		vals = vals[:m]
		for t := 0; t < m; t++ {
			vals[t] = v[idx[i+t]]
		}
		scale := chunkScale(vals, bits)
		binary.LittleEndian.PutUint64(payload[boff:boff+8], math.Float64bits(scale))
		nb := codeBytes(m, bits)
		codes := payload[boff+8 : boff+8+nb]
		for t := range codes {
			codes[t] = 0
		}
		packCodes(codes, vals, scale, bits)
		if deq != nil {
			unpackCodes(deq[i:j], codes, scale, bits)
		}
		boff += 8 + nb
		i = j
	}
	return nil
}

// AppendSparse appends the sparse frame storing v's values at idx (sorted,
// unique, within [0, len(v))) onto dst and returns the extended slice. If
// deq is non-nil it must have len(idx) and receives the dequantized stored
// values — the error-feedback residual of a sparse send is the input vector
// with deq[j] subtracted at idx[j] and everything else kept whole. Panics on
// structurally invalid arguments, like Encode; wire corruption is the
// decoder's concern.
func AppendSparse(dst []byte, v []float64, idx []int, bits, chunk int, deq []float64) []byte {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("quant: AppendSparse: bits %d out of range", bits))
	}
	if chunk < 1 {
		panic(fmt.Sprintf("quant: AppendSparse: chunk %d must be ≥ 1", chunk))
	}
	if deq != nil && len(deq) != len(idx) {
		panic(fmt.Sprintf("quant: AppendSparse: deq length %d, want %d", len(deq), len(idx)))
	}
	checkSparseIdx(idx, len(v))
	payload := sparsePayloadSize(idx, chunk, bits)
	base := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize+payload)...)
	buf := dst[base:]
	appendHeader(buf[:0], sparseFlag|bits, len(v), chunk)
	binary.LittleEndian.PutUint32(buf[frameHeaderSize:frameHeaderSize+4], uint32(len(idx)))
	seg := SparseSegment{ILo: 0, IHi: len(idx), VarOff: 4}
	seg.BlockOff = 4
	prev := 0
	for _, ix := range idx {
		seg.BlockOff += uvarintLen(uint64(ix - prev))
		prev = ix
	}
	if err := EncodeSparseSegmentInto(buf[frameHeaderSize:], v, idx, seg, bits, chunk, deq); err != nil {
		panic(err) // arguments validated above; unreachable
	}
	return dst
}

// EncodeSparse is the allocating convenience form of AppendSparse.
func EncodeSparse(v []float64, idx []int, bits, chunk int, deq []float64) []byte {
	return AppendSparse(make([]byte, 0, SparseFrameBytes(idx, chunk, bits)), v, idx, bits, chunk, deq)
}

// decodeSparseBody parses a sparse frame's payload (the bytes after the
// 14-byte header) given its validated base bits, n and chunk, returning the
// sparse vector and the bytes following the frame. Every structural
// violation wraps ErrCodec, and no allocation exceeds a small multiple of
// the bytes actually present — index and code buffers are sized only after
// the payload is proven long enough to hold them.
func decodeSparseBody(body []byte, bits, n, chunk int) (*SparseVec, []byte, error) {
	if len(body) < 4 {
		return nil, nil, fmt.Errorf("%w: sparse payload %d bytes, count needs 4", ErrCodec, len(body))
	}
	k := int(binary.LittleEndian.Uint32(body[:4]))
	if k > n {
		return nil, nil, fmt.Errorf("%w: sparse count %d exceeds n %d", ErrCodec, k, n)
	}
	if k > len(body)-4 {
		return nil, nil, fmt.Errorf("%w: sparse count %d exceeds payload capacity %d", ErrCodec, k, len(body)-4)
	}
	idx := make([]int, 0, k)
	off := 4
	prev := 0
	for i := 0; i < k; i++ {
		x, m, err := uvarint32(body[off:])
		if err != nil {
			return nil, nil, fmt.Errorf("index %d: %w", i, err)
		}
		if i > 0 && x == 0 {
			return nil, nil, fmt.Errorf("%w: sparse index %d repeats its predecessor", ErrCodec, i)
		}
		if x > uint64(n) {
			return nil, nil, fmt.Errorf("%w: sparse index delta %d exceeds n %d", ErrCodec, x, n)
		}
		ix := prev + int(x)
		if i == 0 {
			ix = int(x)
		}
		if ix >= n {
			return nil, nil, fmt.Errorf("%w: sparse index %d outside [0,%d)", ErrCodec, ix, n)
		}
		idx = append(idx, ix)
		prev = ix
		off += m
	}
	groups := 0
	codeTotal := 0
	for i := 0; i < k; {
		j := groupEnd(idx, i, chunk)
		groups++
		codeTotal += codeBytes(j-i, bits)
		i = j
	}
	need := 8*groups + codeTotal
	if len(body)-off < need {
		return nil, nil, fmt.Errorf("%w: sparse blocks %d bytes, want %d", ErrCodec, len(body)-off, need)
	}
	s := &SparseVec{
		Bits:   bits,
		Chunk:  chunk,
		N:      n,
		Idx:    idx,
		Scales: make([]float64, 0, groups),
		Codes:  make([]byte, 0, codeTotal),
	}
	for i := 0; i < k; {
		j := groupEnd(idx, i, chunk)
		sc := math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
		if math.IsNaN(sc) || math.IsInf(sc, 0) || sc < 0 {
			return nil, nil, fmt.Errorf("%w: sparse chunk scale %v not a finite non-negative value", ErrCodec, sc)
		}
		s.Scales = append(s.Scales, sc)
		off += 8
		nb := codeBytes(j-i, bits)
		s.Codes = append(s.Codes, body[off:off+nb]...)
		off += nb
		i = j
	}
	return s, body[off:], nil
}
