package quant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Segment-level encoding: the parallel counterpart of the streaming codec.
//
// A quantized frame's payload is a flat sequence of chunks — one scale and a
// byte-padded run of packed codes per chunk, every chunk starting on a byte
// boundary — so the payload of any *chunk-aligned* slice of the vector is a
// pure function of that slice alone, and its byte offset inside the frame is
// closed-form. That means S chunk-aligned segments can be encoded by S
// goroutines into disjoint ranges of one preallocated buffer and the result
// is byte-identical to the sequential EncodeStream/Encode output — no
// stitching copies, no protocol change (TestSegmentStitchGoldenBytes pins
// the identity; docs/WIRE.md notes it for non-Go implementations). This is
// what lets the fldist parameter server build a served-model body with every
// core instead of single-threading an O(model) encode.

// SegmentBounds splits an n-value vector into at most segments chunk-aligned
// pieces of nearly equal chunk counts, returning the value offsets
// [0, b₁, …, n]. Every boundary except the last is a multiple of chunk, so
// each piece is a valid EncodeSegmentInto input; the ragged tail (when chunk
// does not divide n) always lands in the final piece. segments is clamped to
// [1, NumChunks(n, chunk)].
func SegmentBounds(n, chunk, segments int) []int {
	if chunk < 1 {
		panic(fmt.Sprintf("quant: SegmentBounds chunk %d must be ≥ 1", chunk))
	}
	nc := NumChunks(n, chunk)
	if segments > nc {
		segments = nc
	}
	if segments < 1 {
		segments = 1
	}
	bounds := make([]int, 1, segments+1)
	base, rem := nc/segments, nc%segments
	off := 0 // in chunks
	for i := 0; i < segments; i++ {
		k := base
		if i < rem {
			k++
		}
		off += k
		v := off * chunk
		if v > n {
			v = n
		}
		bounds = append(bounds, v)
	}
	return bounds
}

// SegmentBytes returns the encoded payload size (scales plus packed codes,
// no frame header) of a chunk-aligned segment of k values. Because chunks
// are byte-padded, it is also the byte offset of the segment starting at
// value k inside a frame's payload — the closed form the concurrent builders
// use to write disjoint ranges.
func SegmentBytes(k, chunk, bits int) int {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("quant: SegmentBytes bits %d outside [2,8]", bits))
	}
	return int(quantPayloadSize(k, chunk, bits))
}

// FrameBytes returns the full encoded frame size of an n-value vector at the
// given codec parameters: the fixed header plus SegmentBytes(n, chunk, bits).
// It equals len(Encode(QuantizeChunks(v, bits, chunk))) for any n-value v.
func FrameBytes(n, chunk, bits int) int {
	return frameHeaderSize + SegmentBytes(n, chunk, bits)
}

// FrameHeaderSize is the fixed byte size of a frame header (see the layout
// in codec.go / docs/WIRE.md).
const FrameHeaderSize = frameHeaderSize

// PutFrameHeader writes the frame header for an n-value vector quantized at
// the given bits/chunk into dst, which must be exactly FrameHeaderSize
// bytes. Together with EncodeSegmentInto over a chunk-aligned partition of
// the vector it reproduces EncodeStream's output byte-for-byte.
func PutFrameHeader(dst []byte, bits, n, chunk int) error {
	if len(dst) != frameHeaderSize {
		return fmt.Errorf("quant: PutFrameHeader dst %d bytes, want %d", len(dst), frameHeaderSize)
	}
	if bits < 2 || bits > 8 {
		return fmt.Errorf("quant: PutFrameHeader bits %d outside [2,8]", bits)
	}
	if chunk < 1 {
		return fmt.Errorf("quant: PutFrameHeader chunk %d must be ≥ 1", chunk)
	}
	if n < 0 || n > math.MaxUint32 {
		return fmt.Errorf("quant: PutFrameHeader n %d outside [0,2^32)", n)
	}
	appendHeader(dst[:0], bits, n, chunk)
	return nil
}

// EncodeSegmentInto encodes v — a chunk-aligned segment of a larger vector,
// i.e. one that starts at a value offset that is a multiple of chunk — into
// dst, which must be exactly SegmentBytes(len(v), chunk, bits) bytes. The
// bytes written are identical to the corresponding range of the sequential
// EncodeStream output over the whole vector, because every chunk's scale and
// codes depend only on that chunk's values. If deq is non-nil it must have
// len(v) and receives the dequantized values (what a decoder reconstructs),
// letting callers fold error-feedback residuals per segment without a second
// pass. Safe to call concurrently for disjoint segments of one buffer.
func EncodeSegmentInto(dst []byte, v []float64, bits, chunk int, deq []float64) error {
	if bits < 2 || bits > 8 {
		return fmt.Errorf("quant: segment encoder bits %d outside [2,8]", bits)
	}
	if chunk < 1 {
		return fmt.Errorf("quant: segment encoder chunk %d must be ≥ 1", chunk)
	}
	if deq != nil && len(deq) != len(v) {
		return fmt.Errorf("quant: segment encoder deq length %d, want %d", len(deq), len(v))
	}
	if want := SegmentBytes(len(v), chunk, bits); len(dst) != want {
		return fmt.Errorf("quant: segment encoder dst %d bytes, want %d for %d values", len(dst), want, len(v))
	}
	off := 0
	for lo := 0; lo < len(v); lo += chunk {
		hi := lo + chunk
		if hi > len(v) {
			hi = len(v)
		}
		part := v[lo:hi]
		scale := chunkScale(part, bits)
		binary.LittleEndian.PutUint64(dst[off:off+8], math.Float64bits(scale))
		nb := codeBytes(len(part), bits)
		codes := dst[off+8 : off+8+nb]
		for i := range codes {
			codes[i] = 0
		}
		packCodes(codes, part, scale, bits)
		if deq != nil {
			unpackCodes(deq[lo:hi], codes, scale, bits)
		}
		off += 8 + nb
	}
	return nil
}

// EncodeSegment is the allocating convenience form of EncodeSegmentInto.
func EncodeSegment(v []float64, bits, chunk int, deq []float64) ([]byte, error) {
	dst := make([]byte, SegmentBytes(len(v), chunk, bits))
	if err := EncodeSegmentInto(dst, v, bits, chunk, deq); err != nil {
		return nil, err
	}
	return dst, nil
}
