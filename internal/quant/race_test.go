//go:build race

package quant

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation defeats sync.Pool reuse and inflates allocation counts —
// allocation-sensitive assertions skip themselves under it.
const raceEnabled = true
