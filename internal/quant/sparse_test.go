package quant

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sparseTestVec builds a deterministic dense vector with a heavy-tailed
// magnitude profile, the shape sparsification exploits.
func sparseTestVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(4)-2))
	}
	return v
}

// TopKIndices must pick the k largest magnitudes with ties broken by
// ascending index, never select exact zeros, and return ascending indices.
func TestTopKIndicesDeterministic(t *testing.T) {
	v := []float64{0, 3, -3, 1, 3, 0, -5, 0.5}
	got := TopKIndices(v, 3)
	// |−5| is largest; the 3s at indices 1, 2, 4 tie at the threshold and
	// ascending order takes 1 then 2.
	want := []int{1, 2, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopKIndices = %v, want %v", got, want)
	}
	if got := TopKIndices(v, 100); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 6, 7}) {
		t.Fatalf("k past nonzero count must return all nonzero ascending, got %v", got)
	}
	if got := TopKIndices(v, 0); got != nil {
		t.Fatalf("k=0 must return nil, got %v", got)
	}
	if got := TopKIndices([]float64{0, 0, math.NaN(), math.Inf(1)}, 2); got != nil {
		t.Fatalf("zeros and non-finite values must never be selected, got %v", got)
	}
	// Property: against a sort-based oracle on random vectors.
	f := func(seed int64, kRaw uint8) bool {
		v := sparseTestVec(1+int(kRaw)%200, seed)
		k := 1 + int(kRaw)%20
		got := TopKIndices(v, k)
		// Oracle: stable sort by (|v| desc, index asc), take k, sort asc.
		type mi struct {
			a float64
			i int
		}
		all := make([]mi, 0, len(v))
		for i, x := range v {
			if finiteNonzero(x) {
				all = append(all, mi{math.Abs(x), i})
			}
		}
		for i := 1; i < len(all); i++ { // insertion sort, stable
			for j := i; j > 0 && all[j].a > all[j-1].a; j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		if k > len(all) {
			k = len(all)
		}
		want := make([]int, 0, k)
		for _, m := range all[:k] {
			want = append(want, m.i)
		}
		sortInts(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// A sparse frame must round-trip: decode yields the selected indices, the
// re-encoding is byte-identical, and the dequantized dense vector is zero
// off-support with per-value error bounded by each chunk's scale.
func TestSparseRoundTrip(t *testing.T) {
	f := func(seed int64, bitsRaw, chunkRaw, kRaw uint8) bool {
		bits := 2 + int(bitsRaw%7)
		chunk := 1 + int(chunkRaw)
		n := 1 + int(uint(seed)%500)
		v := sparseTestVec(n, seed)
		idx := TopKIndices(v, 1+int(kRaw)%60)
		deq := make([]float64, len(idx))
		enc := EncodeSparse(v, idx, bits, chunk, deq)
		if len(enc) != SparseFrameBytes(idx, chunk, bits) {
			return false
		}
		fr, err := Decode(enc)
		if err != nil || !fr.IsSparse() || fr.IsRaw() || fr.Bits != bits || fr.Chunk != chunk || fr.Len() != n {
			return false
		}
		if !reflect.DeepEqual(fr.Sparse.Idx, idx) {
			return false
		}
		if !bytes.Equal(fr.Sparse.Encode(), enc) {
			return false
		}
		dense := fr.Vector()
		on := make(map[int]bool, len(idx))
		for j, ix := range idx {
			on[ix] = true
			if dense[ix] != deq[j] { // decoder must agree with encoder's deq
				return false
			}
		}
		for i, x := range dense {
			if !on[i] && x != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// An empty selection (k = 0) is a valid frame that decodes to all zeros.
func TestSparseEmptySelection(t *testing.T) {
	v := []float64{1, 2, 3}
	enc := EncodeSparse(v, nil, 4, 2, nil)
	fr, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.IsSparse() || fr.Len() != 3 || len(fr.Sparse.Idx) != 0 {
		t.Fatalf("empty sparse frame misdecoded: %+v", fr)
	}
	for i, x := range fr.Vector() {
		if x != 0 {
			t.Fatalf("value %d = %v, want 0", i, x)
		}
	}
}

// Segment-parallel sparse encoding must stitch byte-identically to the
// sequential AppendSparse output, including the per-index deq values — the
// identity the fldist serve plane's parallel delta builds rely on.
func TestSparseSegmentStitchIdentity(t *testing.T) {
	for _, n := range []int{1, 7, 256, 1000, 2254} {
		for _, segments := range []int{1, 2, 3, 5, 8} {
			v := sparseTestVec(n, int64(n)*31+int64(segments))
			idx := TopKIndices(v, n/8+1)
			bits, chunk := 4, 64
			wantDeq := make([]float64, len(idx))
			want := EncodeSparse(v, idx, bits, chunk, wantDeq)

			bounds := SegmentBounds(n, chunk, segments)
			segs := SparseSegments(idx, bounds, chunk, bits)
			got := make([]byte, SparseFrameBytes(idx, chunk, bits))
			if err := PutSparseFrameHeader(got[:FrameHeaderSize+4], bits, n, chunk, len(idx)); err != nil {
				t.Fatal(err)
			}
			gotDeq := make([]float64, len(idx))
			done := make(chan error, len(segs))
			for _, seg := range segs {
				go func(seg SparseSegment) {
					done <- EncodeSparseSegmentInto(got[FrameHeaderSize:], v, idx, seg, bits, chunk, gotDeq)
				}(seg)
			}
			for range segs {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d segments=%d: stitched bytes differ from sequential encode", n, segments)
			}
			if !reflect.DeepEqual(gotDeq, wantDeq) {
				t.Fatalf("n=%d segments=%d: stitched deq differs from sequential encode", n, segments)
			}
		}
	}
}

// Streaming sparse decode must agree with the buffered path, through both a
// native io.ByteReader and a bare io.Reader, and must honor the EF apply
// semantics (scatter-add onto a non-zero base).
func TestStreamSparseApply(t *testing.T) {
	n := 777
	v := sparseTestVec(n, 5)
	idx := TopKIndices(v, 99)
	enc := EncodeSparse(v, idx, 4, 32, nil)
	fr, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	dense := fr.Vector()

	base := sparseTestVec(n, 6)
	want := make([]float64, n)
	for i := range want {
		want[i] = base[i] + dense[i]
	}

	for name, mk := range map[string]func() io.Reader{
		"byte reader": func() io.Reader { return bufio.NewReader(bytes.NewReader(enc)) },
		"bare reader": func() io.Reader { return struct{ io.Reader }{bytes.NewReader(enc)} },
	} {
		d, err := NewStreamDecoder(mk())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !d.IsSparse() || d.IsRaw() || d.Bits() != 4 || d.Chunk() != 32 || d.Len() != n {
			t.Fatalf("%s: sparse header misparsed", name)
		}
		got := append([]float64(nil), base...)
		if err := d.ApplySparse(got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: ApplySparse disagrees with buffered decode", name)
		}
		if err := d.ApplySparse(got); err == nil {
			t.Fatalf("%s: second ApplySparse must fail", name)
		}
	}

	// DecodeAll materializes the dense vector.
	d, err := NewStreamDecoder(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	for i := range got {
		got[i] = 42 // must be overwritten, not added to
	}
	if err := d.DecodeAll(got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, dense) {
		t.Fatal("DecodeAll on sparse frame disagrees with buffered decode")
	}
	if d.NextLen() != 0 {
		t.Fatal("sparse NextLen must be 0")
	}
}

// Every malformed sparse frame must surface ErrCodec from both decode paths
// — never a panic, never silent acceptance, never an oversized allocation.
func TestSparseDecodeRejectsCorruptFrames(t *testing.T) {
	v := sparseTestVec(300, 7)
	idx := TopKIndices(v, 40)
	good := EncodeSparse(v, idx, 4, 64, nil)

	cases := map[string][]byte{
		"sparse raw bits":  flip(good, 5, 0x80),   // flag with base bits 0
		"sparse bits 9":    flip(good, 5, 0x80|9), // flag with base out of range
		"zero chunk":       flip(flip(good, 10, 0), 11, 0),
		"count only":       good[:frameHeaderSize+2], // truncated k field
		"truncated index":  good[:frameHeaderSize+4+3],
		"truncated blocks": good[:len(good)-5],
		"trailing junk":    append(append([]byte{}, good...), 0x00),
	}
	// k exceeding n must fail before any index allocation.
	hugeK := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(hugeK[frameHeaderSize:], math.MaxUint32)
	cases["huge count"] = hugeK
	// k exceeding the bytes present must fail even when k ≤ n.
	bigN := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(bigN[6:10], math.MaxUint32)
	binary.LittleEndian.PutUint32(bigN[frameHeaderSize:], math.MaxUint32)
	cases["count past payload"] = bigN
	// A zero delta after the first index duplicates its predecessor.
	dupIdx := append([]byte{}, good...)
	dupIdx[frameHeaderSize+4+1] = 0
	cases["duplicate index"] = dupIdx
	// An index delta pushing past n.
	overIdx := append([]byte{}, good...)
	overIdx[frameHeaderSize+4] = 0xAC // 5-byte varint: way past n
	overIdx[frameHeaderSize+4+1] = 0xDA
	overIdx[frameHeaderSize+4+2] = 0xBC
	overIdx[frameHeaderSize+4+3] = 0x8A
	cases["index out of range"] = overIdx
	// Overlong (non-canonical) varint encoding of a small delta.
	overlong := append([]byte{}, good...)
	overlong[frameHeaderSize+4] = 0x80
	overlong[frameHeaderSize+4+1] = 0x00
	cases["overlong varint"] = overlong
	// Non-finite chunk scale: locate the first block (after the varints).
	varBytes := 0
	prev := 0
	for _, ix := range idx {
		varBytes += uvarintLen(uint64(ix - prev))
		prev = ix
	}
	badScale := append([]byte{}, good...)
	binary.LittleEndian.PutUint64(badScale[frameHeaderSize+4+varBytes:], math.Float64bits(math.NaN()))
	cases["NaN scale"] = badScale

	for name, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrCodec) {
			t.Fatalf("Decode %s: want ErrCodec, got %v", name, err)
		}
		d, err := NewStreamDecoder(bytes.NewReader(b))
		if err != nil {
			if !errors.Is(err, ErrCodec) {
				t.Fatalf("stream header %s: want ErrCodec, got %v", name, err)
			}
			continue
		}
		if !d.IsSparse() {
			continue // corrupted into a non-sparse form; other tests cover it
		}
		dst := make([]float64, d.Len())
		if err := d.ApplySparse(dst); err == nil {
			// Streamed decoders cannot see trailing junk; strict framing is
			// the buffered path's job.
			if name != "trailing junk" {
				t.Fatalf("stream %s: want error, got nil", name)
			}
		} else if !errors.Is(err, ErrCodec) {
			t.Fatalf("stream %s: want ErrCodec, got %v", name, err)
		}
	}
}

// A dense-legacy decoder (bits validation from before the sparse form) must
// reject the flagged bits byte — pinned here against the frozen set of
// legal dense values so the compatibility story cannot silently rot.
func TestSparseBitsByteOutsideDenseRange(t *testing.T) {
	enc := EncodeSparse([]float64{1, 2, 3, 4}, []int{1, 3}, 4, 2, nil)
	b := enc[5]
	if b&sparseFlag == 0 {
		t.Fatalf("sparse frame bits byte %#x lacks the flag bit", b)
	}
	legalDense := map[byte]bool{0: true}
	for v := byte(2); v <= 8; v++ {
		legalDense[v] = true
	}
	if legalDense[b] {
		t.Fatalf("sparse bits byte %#x collides with a legal dense value", b)
	}
}
