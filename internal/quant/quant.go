// Package quant implements symmetric low-bit quantization of parameter
// vectors, the parameter-level memory/communication reduction the paper's §8
// names as complementary to FedProphet's layer-level partitioning. Clients
// can upload quantized module updates and the server dequantizes before
// partial averaging.
//
// Two granularities are provided. Quantize fits one scale to the whole
// vector — simple, but a single outlier weight destroys the resolution of
// every other value. QuantizeChunks fits an independent scale per fixed-size
// chunk, confining each outlier's damage to its own chunk; this is the form
// the distributed transport (internal/fldist) puts on the wire. Encode and
// Decode serialize chunked vectors into a self-describing binary frame with
// a magic+version header (see docs/WIRE.md for the byte-level layout), so
// non-Go clients can interoperate.
//
// The package is deterministic: identical input vectors produce identical
// codes and frames on every run, which the wire-level golden tests and the
// WAL replay path both rely on.
//
//lint:deterministic
package quant

import (
	"fmt"
	"math"
)

// Quantized is a symmetric per-vector quantization of a float64 slice:
// value ≈ Scale · code with code ∈ [−(2^(Bits−1)−1), 2^(Bits−1)−1].
type Quantized struct {
	Scale float64
	Bits  int
	N     int
	// Codes are bit-packed little-endian into bytes.
	Codes []byte
}

// maxCode returns the largest representable magnitude for b bits.
func maxCode(bits int) int { return (1 << (bits - 1)) - 1 }

// Quantize compresses v at the given bit width (2..8).
func Quantize(v []float64, bits int) Quantized {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("quant: bits must be in [2,8], got %d", bits))
	}
	scale := chunkScale(v, bits)
	q := Quantized{Scale: scale, Bits: bits, N: len(v)}
	q.Codes = make([]byte, codeBytes(len(v), bits))
	packCodes(q.Codes, v, scale, bits)
	return q
}

// codeBytes returns the packed size of n codes at the given bit width.
func codeBytes(n, bits int) int { return (n*bits + 7) / 8 }

// chunkScale fits the symmetric quantization scale maxAbs/maxCode to v.
// Degenerate inputs — all-zero (maxAbs = 0) or containing a non-finite
// value (maxAbs = ±Inf or NaN) — yield scale 0, which both packCodes and
// unpackCodes treat as "every code is zero": the chunk round-trips to an
// exact zero vector instead of emitting NaN on dequantize.
func chunkScale(v []float64, bits int) float64 {
	maxAbs := 0.0
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs / float64(maxCode(bits))
}

// packCodes quantizes v at the given scale and packs the two's-complement
// codes little-endian into dst, which must hold codeBytes(len(v), bits)
// zeroed bytes. A zero scale leaves dst all zero.
func packCodes(dst []byte, v []float64, scale float64, bits int) {
	if scale == 0 {
		return
	}
	mc := maxCode(bits)
	if bits == 8 {
		// Byte-aligned fast path for the most common wire width: identical
		// two's-complement codes, no bit shuffling.
		for i, x := range v {
			code := int(math.Round(x / scale))
			if code > mc {
				code = mc
			} else if code < -mc {
				code = -mc
			}
			dst[i] = byte(code)
		}
		return
	}
	mask := (1 << bits) - 1
	bitPos := 0
	for _, x := range v {
		code := int(math.Round(x / scale))
		if code > mc {
			code = mc
		} else if code < -mc {
			code = -mc
		}
		u := code & mask // two's complement within `bits` bits
		byteIdx := bitPos / 8
		off := bitPos % 8
		dst[byteIdx] |= byte(u << off)
		if off+bits > 8 {
			dst[byteIdx+1] |= byte(u >> (8 - off))
		}
		bitPos += bits
	}
}

// unpackCodes reverses packCodes: it sign-extends each packed code from src
// and writes code·scale into dst. A zero scale writes zeros.
func unpackCodes(dst []float64, src []byte, scale float64, bits int) {
	if scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if bits == 8 {
		// Byte-aligned fast path: int8 conversion is exactly the generic
		// loop's mask-and-sign-extend for bits = 8.
		for i := range dst {
			dst[i] = float64(int8(src[i])) * scale
		}
		return
	}
	mask := (1 << bits) - 1
	signBit := 1 << (bits - 1)
	bitPos := 0
	for i := range dst {
		byteIdx := bitPos / 8
		off := bitPos % 8
		u := int(src[byteIdx]) >> off
		if off+bits > 8 {
			u |= int(src[byteIdx+1]) << (8 - off)
		}
		u &= mask
		code := u
		if u&signBit != 0 {
			code = u - (1 << bits) // sign-extend
		}
		dst[i] = float64(code) * scale
		bitPos += bits
	}
}

// Dequantize reconstructs the approximate float vector.
func (q Quantized) Dequantize() []float64 {
	out := make([]float64, q.N)
	unpackCodes(out, q.Codes, q.Scale, q.Bits)
	return out
}

// Bytes returns the wire size of the quantized vector including an honest
// header: 1 byte for Bits, 4 bytes for N (a full 32-bit length — charging
// less inflates CompressRatio), and 8 bytes for the float64 scale.
func (q Quantized) Bytes() int { return len(q.Codes) + 1 /*bits*/ + 4 /*n*/ + 8 /*scale*/ }

// MaxError returns the worst-case absolute reconstruction error, Scale/2.
func (q Quantized) MaxError() float64 { return q.Scale / 2 }

// CompressRatio returns float32-bytes / quantized-bytes, the communication
// saving relative to uncompressed uploads.
func (q Quantized) CompressRatio() float64 {
	if q.Bytes() == 0 {
		return 0
	}
	return float64(4*q.N) / float64(q.Bytes())
}
