// Package quant implements symmetric low-bit quantization of parameter
// vectors, the parameter-level memory/communication reduction the paper's §8
// names as complementary to FedProphet's layer-level partitioning. Clients
// can upload quantized module updates and the server dequantizes before
// partial averaging.
package quant

import (
	"fmt"
	"math"
)

// Quantized is a symmetric per-vector quantization of a float64 slice:
// value ≈ Scale · code with code ∈ [−(2^(Bits−1)−1), 2^(Bits−1)−1].
type Quantized struct {
	Scale float64
	Bits  int
	N     int
	// Codes are bit-packed little-endian into bytes.
	Codes []byte
}

// maxCode returns the largest representable magnitude for b bits.
func maxCode(bits int) int { return (1 << (bits - 1)) - 1 }

// Quantize compresses v at the given bit width (2..8).
func Quantize(v []float64, bits int) Quantized {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("quant: bits must be in [2,8], got %d", bits))
	}
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	mc := maxCode(bits)
	scale := maxAbs / float64(mc)
	q := Quantized{Scale: scale, Bits: bits, N: len(v)}
	q.Codes = make([]byte, (len(v)*bits+7)/8)
	if scale == 0 {
		return q
	}
	bitPos := 0
	mask := (1 << bits) - 1
	for _, x := range v {
		code := int(math.Round(x / scale))
		if code > mc {
			code = mc
		} else if code < -mc {
			code = -mc
		}
		u := code & mask // two's complement within `bits` bits
		byteIdx := bitPos / 8
		off := bitPos % 8
		q.Codes[byteIdx] |= byte(u << off)
		if off+bits > 8 {
			q.Codes[byteIdx+1] |= byte(u >> (8 - off))
		}
		bitPos += bits
	}
	return q
}

// Dequantize reconstructs the approximate float vector.
func (q Quantized) Dequantize() []float64 {
	out := make([]float64, q.N)
	if q.Scale == 0 {
		return out
	}
	mask := (1 << q.Bits) - 1
	signBit := 1 << (q.Bits - 1)
	bitPos := 0
	for i := 0; i < q.N; i++ {
		byteIdx := bitPos / 8
		off := bitPos % 8
		u := int(q.Codes[byteIdx]) >> off
		if off+q.Bits > 8 {
			u |= int(q.Codes[byteIdx+1]) << (8 - off)
		}
		u &= mask
		code := u
		if u&signBit != 0 {
			code = u - (1 << q.Bits) // sign-extend
		}
		out[i] = float64(code) * q.Scale
		bitPos += q.Bits
	}
	return out
}

// Bytes returns the wire size of the quantized vector including an honest
// header: 1 byte for Bits, 4 bytes for N (a full 32-bit length — charging
// less inflates CompressRatio), and 8 bytes for the float64 scale.
func (q Quantized) Bytes() int { return len(q.Codes) + 1 /*bits*/ + 4 /*n*/ + 8 /*scale*/ }

// MaxError returns the worst-case absolute reconstruction error, Scale/2.
func (q Quantized) MaxError() float64 { return q.Scale / 2 }

// CompressRatio returns float32-bytes / quantized-bytes, the communication
// saving relative to uncompressed uploads.
func (q Quantized) CompressRatio() float64 {
	if q.Bytes() == 0 {
		return 0
	}
	return float64(4*q.N) / float64(q.Bytes())
}
