package quant

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Decode(Encode(q)) must reproduce the quantized vector exactly: the frame
// re-encodes byte-identically.
func TestEncodeDecodeByteIdentical(t *testing.T) {
	f := func(seed int64, bitsRaw, chunkRaw uint8) bool {
		bits := 2 + int(bitsRaw%7)
		chunk := 1 + int(chunkRaw) // 1..256
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) // 0 allowed
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
		}
		if n > 0 && rng.Intn(2) == 0 {
			// Exercise degenerate chunks.
			z := rng.Intn(n)
			for i := z; i < n && i < z+chunk; i++ {
				v[i] = 0
			}
		}
		c := QuantizeChunks(v, bits, chunk)
		enc := Encode(c)
		fr, err := Decode(enc)
		if err != nil || fr.IsRaw() || fr.Len() != n {
			return false
		}
		return bytes.Equal(Encode(fr.Q), enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRawFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 17, 333} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		fr, err := Decode(EncodeRaw(v))
		if err != nil {
			t.Fatal(err)
		}
		if !fr.IsRaw() || fr.Len() != n {
			t.Fatalf("raw frame misdecoded: raw=%v len=%d", fr.IsRaw(), fr.Len())
		}
		got := fr.Vector()
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("raw value %d: %v != %v", i, got[i], v[i])
			}
		}
	}
}

// Every corruption must surface as an error wrapping ErrCodec — never a
// panic, never silent acceptance.
func TestDecodeRejectsCorruptFrames(t *testing.T) {
	good := Encode(QuantizeChunks([]float64{1, -2, 3, 0.5, -0.25}, 4, 2))
	cases := map[string][]byte{
		"empty":         {},
		"short header":  good[:frameHeaderSize-1],
		"bad magic":     append([]byte("NOPE"), good[4:]...),
		"bad version":   flip(good, 4, 99),
		"bits=1":        flip(good, 5, 1),
		"bits=9":        flip(good, 5, 9),
		"zero chunk":    flip(flip(good, 10, 0), 11, 0),
		"truncated":     good[:len(good)-3],
		"trailing junk": append(append([]byte{}, good...), 0xAA),
	}
	// A raw frame must not carry a chunk size.
	rawBadChunk := EncodeRaw([]float64{1, 2})
	rawBadChunk[10] = 7
	cases["raw with chunk"] = rawBadChunk
	// NaN scale.
	nanScale := append([]byte{}, good...)
	binary.LittleEndian.PutUint64(nanScale[frameHeaderSize:], math.Float64bits(math.NaN()))
	cases["NaN scale"] = nanScale
	// Negative scale.
	negScale := append([]byte{}, good...)
	binary.LittleEndian.PutUint64(negScale[frameHeaderSize:], math.Float64bits(-1.0))
	cases["negative scale"] = negScale
	// Huge claimed n with a tiny payload must fail the length check, not
	// allocate gigabytes.
	hugeN := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(hugeN[6:10], math.MaxUint32)
	cases["huge n truncated"] = hugeN

	for name, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrCodec) {
			t.Fatalf("%s: want ErrCodec, got %v", name, err)
		}
	}
}

func flip(b []byte, i int, v byte) []byte {
	out := append([]byte{}, b...)
	out[i] = v
	return out
}

// Frames are self-delimiting: two frames concatenate and DecodeFirst walks
// them, while strict Decode rejects the concatenation.
func TestDecodeFirstSequencing(t *testing.T) {
	a := Encode(QuantizeChunks([]float64{1, 2, 3}, 8, 2))
	b := EncodeRaw([]float64{4, 5})
	joined := append(append([]byte{}, a...), b...)

	f1, rest, err := DecodeFirst(joined)
	if err != nil || f1.IsRaw() || f1.Len() != 3 {
		t.Fatalf("first frame: %v %v", f1, err)
	}
	f2, rest, err := DecodeFirst(rest)
	if err != nil || !f2.IsRaw() || f2.Len() != 2 {
		t.Fatalf("second frame: %v %v", f2, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after both frames", len(rest))
	}
	if _, err := Decode(joined); !errors.Is(err, ErrCodec) {
		t.Fatalf("strict Decode must reject trailing frame, got %v", err)
	}
}

// The wire overhead at 8 bits and chunk 256 stays near 1 byte/value, the
// budget the ≥7× round-bytes reduction in BENCH_wire.json depends on.
func TestFrameOverhead(t *testing.T) {
	v := make([]float64, 4096)
	rng := rand.New(rand.NewSource(9))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	c := QuantizeChunks(v, 8, 256)
	perValue := float64(len(Encode(c))) / float64(len(v))
	if perValue > 1.05 {
		t.Fatalf("8-bit wire cost %.3f bytes/value, want ≤ 1.05", perValue)
	}
}
