package quant

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden frame vectors under testdata/")

// The golden frame vectors: reference bytes for every FPQ1 frame form, the
// conformance fixtures docs/WIRE.md points non-Go implementations at. Each
// entry is a deterministic input whose encoding must stay byte-identical
// forever — any codec change that shifts these bytes is a wire protocol
// break, not a refactor.

// goldenDense returns the 13-value vector behind the raw and dense fixtures.
// Every value is exactly representable (multiples of 0.25), so quantization
// scales and codes are platform-independent.
func goldenDense() []float64 {
	v := make([]float64, 13)
	for i := range v {
		v[i] = float64(i%7-3) * 0.25 * float64(1+i/7)
	}
	v[4] = 0 // a zero inside a chunk
	return v
}

// goldenSparseInput returns the 400-value vector and hand-picked index set
// behind the sparse fixtures. The deltas exercise a leading zero index,
// consecutive indices, a 1-byte maximum delta (127) and a 2-byte varint
// delta (160), and the final index lands in the last chunk.
func goldenSparseInput() ([]float64, []int) {
	v := make([]float64, 400)
	idx := []int{0, 3, 130, 131, 140, 300, 399}
	for j, ix := range idx {
		v[ix] = float64(j-3) * 0.5
	}
	v[0] = 2.25 // keep index 0 nonzero after the j-3 formula zeroes j=3
	return v, idx
}

func goldenFrames() map[string][]byte {
	dense := goldenDense()
	sv, idx := goldenSparseInput()
	return map[string][]byte{
		"fpq1_raw.bin":     EncodeRaw(dense),
		"fpq1_dense8.bin":  Encode(QuantizeChunks(dense, 8, 4)),
		"fpq1_dense4.bin":  Encode(QuantizeChunks(dense, 4, 4)),
		"fpq1_sparse8.bin": EncodeSparse(sv, idx, 8, 64, nil),
		"fpq1_sparse4.bin": EncodeSparse(sv, idx, 4, 64, nil),
	}
}

// TestGoldenFrameVectors pins every frame form's encoding to the checked-in
// reference bytes, and proves each checked-in file still decodes to the
// form and shape it documents. Regenerate with `go test ./internal/quant
// -run GoldenFrameVectors -update` after an intentional protocol change.
func TestGoldenFrameVectors(t *testing.T) {
	frames := goldenFrames()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for name, b := range frames {
			if err := os.WriteFile(filepath.Join("testdata", name), b, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote testdata/%s (%d bytes)", name, len(b))
		}
		return
	}
	for name, want := range frames {
		got, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: checked-in bytes differ from the current encoder — wire protocol break", name)
		}
		fr, err := Decode(got)
		if err != nil {
			t.Fatalf("%s: checked-in frame fails to decode: %v", name, err)
		}
		switch {
		case fr.IsRaw():
			if name != "fpq1_raw.bin" || fr.Len() != 13 {
				t.Errorf("%s: decoded as raw/%d", name, fr.Len())
			}
		case fr.IsSparse():
			if fr.Len() != 400 || len(fr.Sparse.Idx) != 7 {
				t.Errorf("%s: decoded as sparse n=%d k=%d", name, fr.Len(), len(fr.Sparse.Idx))
			}
			if fmt.Sprintf("fpq1_sparse%d.bin", fr.Bits) != name {
				t.Errorf("%s: decoded at %d bits", name, fr.Bits)
			}
		default:
			if fr.Len() != 13 || fmt.Sprintf("fpq1_dense%d.bin", fr.Bits) != name {
				t.Errorf("%s: decoded as dense %d-bit/%d values", name, fr.Bits, fr.Len())
			}
		}
	}
}
