//go:build !race

package quant

// raceEnabled reports whether this test binary was built with -race; see
// race_test.go.
const raceEnabled = false
