package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChunkedRoundTripErrorBound(t *testing.T) {
	f := func(seed int64, bitsRaw, chunkRaw uint8) bool {
		bits := 2 + int(bitsRaw%7)   // 2..8
		chunk := 1 + int(chunkRaw%9) // 1..9, forces partial last chunks
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		c := QuantizeChunks(v, bits, chunk)
		out := c.Dequantize()
		if len(out) != n {
			return false
		}
		for i := range v {
			bound := c.Scales[i/chunk]/2 + 1e-12
			if math.Abs(out[i]-v[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The whole point of chunking: one outlier must not destroy the resolution
// of values in other chunks.
func TestChunkingConfinesOutlierDamage(t *testing.T) {
	v := make([]float64, 512)
	for i := range v {
		v[i] = math.Sin(float64(i)) * 0.01
	}
	v[500] = 1000 // outlier in the last chunk

	whole := Quantize(v, 8)
	chunked := QuantizeChunks(v, 8, 128)

	// Per-vector scale is dominated by the outlier: every small value
	// collapses to code 0.
	wholeOut := whole.Dequantize()
	chunkedOut := chunked.Dequantize()
	var wholeErr, chunkedErr float64
	for i := 0; i < 128; i++ { // first chunk, far from the outlier
		wholeErr += math.Abs(wholeOut[i] - v[i])
		chunkedErr += math.Abs(chunkedOut[i] - v[i])
	}
	if chunkedErr*10 > wholeErr {
		t.Fatalf("chunked error %g not ≪ whole-vector error %g", chunkedErr, wholeErr)
	}
	// The outlier's own chunk still represents it.
	if math.Abs(chunkedOut[500]-1000) > chunked.Scales[500/128]/2+1e-9 {
		t.Fatalf("outlier lost: %v", chunkedOut[500])
	}
}

// An all-zero chunk inside a non-zero vector must encode with scale 0 and
// dequantize to exact zeros — no NaN from a 0/0 scale.
func TestAllZeroChunkNoNaN(t *testing.T) {
	v := make([]float64, 12)
	for i := 8; i < 12; i++ {
		v[i] = float64(i) // chunks 0,1 all-zero; chunk 2 non-zero
	}
	c := QuantizeChunks(v, 4, 4)
	if c.Scales[0] != 0 || c.Scales[1] != 0 {
		t.Fatalf("zero chunks must have scale 0, got %v", c.Scales)
	}
	out := c.Dequantize()
	for i, x := range out {
		if math.IsNaN(x) {
			t.Fatalf("NaN at %d: %v", i, out)
		}
	}
	for i := 0; i < 8; i++ {
		if out[i] != 0 {
			t.Fatalf("zero chunk value %d dequantized to %v", i, out[i])
		}
	}
	if math.Abs(out[11]-11) > c.Scales[2]/2+1e-12 {
		t.Fatalf("non-zero chunk mangled: %v", out)
	}
}

// Non-finite inputs degrade to a zero-scale chunk rather than poisoning the
// dequantized vector with NaN.
func TestNonFiniteChunkDegradesToZero(t *testing.T) {
	v := []float64{1, math.Inf(1), 2, 3, 0.5, -0.5, 0.25, 0.125}
	c := QuantizeChunks(v, 8, 4)
	out := c.Dequantize()
	for i, x := range out {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("non-finite survived at %d: %v", i, out)
		}
	}
	if c.Scales[0] != 0 {
		t.Fatalf("chunk with Inf must get scale 0, got %v", c.Scales[0])
	}
	// The clean second chunk is unaffected.
	if math.Abs(out[4]-0.5) > c.Scales[1]/2+1e-12 {
		t.Fatalf("clean chunk mangled: %v", out)
	}
}

// The full-vector Quantize path shares the degenerate-scale guard.
func TestQuantizeNonFiniteVector(t *testing.T) {
	q := Quantize([]float64{math.NaN(), 1, 2}, 4)
	if q.Scale != 0 {
		t.Fatalf("NaN input must yield scale 0, got %v", q.Scale)
	}
	for i, x := range q.Dequantize() {
		if x != 0 {
			t.Fatalf("degenerate vector must dequantize to zeros, got %v at %d", x, i)
		}
	}
}

func TestChunkedBytesMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 7, 256, 1000} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for _, bits := range []int{2, 4, 8} {
			c := QuantizeChunks(v, bits, 64)
			if got, want := c.Bytes(), len(Encode(c)); got != want {
				t.Fatalf("n=%d bits=%d: Bytes()=%d, len(Encode)=%d", n, bits, got, want)
			}
		}
	}
}

func TestChunkedMoreBitsLessError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 600)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	errAt := func(bits int) float64 {
		out := QuantizeChunks(v, bits, 100).Dequantize()
		s := 0.0
		for i := range v {
			s += math.Abs(out[i] - v[i])
		}
		return s
	}
	if !(errAt(8) < errAt(4) && errAt(4) < errAt(2)) {
		t.Fatalf("error must shrink with bits: 2b=%g 4b=%g 8b=%g", errAt(2), errAt(4), errAt(8))
	}
}

func TestNumChunksAndBadArgs(t *testing.T) {
	if NumChunks(0, 4) != 0 || NumChunks(1, 4) != 1 || NumChunks(4, 4) != 1 || NumChunks(5, 4) != 2 {
		t.Fatal("NumChunks arithmetic wrong")
	}
	for _, f := range []func(){
		func() { QuantizeChunks([]float64{1}, 1, 4) },
		func() { QuantizeChunks([]float64{1}, 9, 4) },
		func() { QuantizeChunks([]float64{1}, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on invalid args")
				}
			}()
			f()
		}()
	}
}
