package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripErrorBound(t *testing.T) {
	f := func(seed int64, bitsRaw uint8) bool {
		bits := 2 + int(bitsRaw%7) // 2..8
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		q := Quantize(v, bits)
		out := q.Dequantize()
		if len(out) != n {
			return false
		}
		for i := range v {
			if math.Abs(out[i]-v[i]) > q.Scale/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroVector(t *testing.T) {
	q := Quantize(make([]float64, 17), 4)
	out := q.Dequantize()
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero vector must round-trip to zero")
		}
	}
}

func TestMoreBitsLessError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 500)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	errAt := func(bits int) float64 {
		q := Quantize(v, bits)
		out := q.Dequantize()
		s := 0.0
		for i := range v {
			s += math.Abs(out[i] - v[i])
		}
		return s
	}
	if !(errAt(8) < errAt(4) && errAt(4) < errAt(2)) {
		t.Fatalf("error must shrink with bits: 2b=%g 4b=%g 8b=%g", errAt(2), errAt(4), errAt(8))
	}
}

func TestBytesAndCompressRatio(t *testing.T) {
	v := make([]float64, 800)
	q8 := Quantize(v, 8)
	q4 := Quantize(v, 4)
	q2 := Quantize(v, 2)
	if q8.Bytes() <= q4.Bytes() || q4.Bytes() <= q2.Bytes() {
		t.Fatalf("bytes must grow with bits: %d %d %d", q2.Bytes(), q4.Bytes(), q8.Bytes())
	}
	// 4-bit packs two codes per byte: 800 codes = 400 bytes, plus the
	// 13-byte header (1 bits + 4 n + 8 scale).
	if got, want := q4.Bytes(), 400+13; got != want {
		t.Fatalf("4-bit size = %d, want %d", got, want)
	}
	if q4.CompressRatio() < 7 { // 3200/413 ≈ 7.75
		t.Fatalf("4-bit compression ratio too low: %v", q4.CompressRatio())
	}
}

func TestExtremesSaturate(t *testing.T) {
	v := []float64{-10, -5, 0, 5, 10}
	q := Quantize(v, 3) // max code 3, scale 10/3
	out := q.Dequantize()
	if math.Abs(out[4]-10) > 1e-9 || math.Abs(out[0]+10) > 1e-9 {
		t.Fatalf("extremes must be exactly representable: %v", out)
	}
	if out[2] != 0 {
		t.Fatalf("zero must survive: %v", out)
	}
}

func TestBitsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantize([]float64{1}, 9)
}

func TestSignedValuesAcrossByteBoundaries(t *testing.T) {
	// 3-bit codes straddle byte boundaries; verify negative values survive.
	v := []float64{-3, 3, -1, 1, -2, 2, -3, 3, -1}
	q := Quantize(v, 3)
	out := q.Dequantize()
	for i := range v {
		if math.Abs(out[i]-v[i]) > q.Scale/2+1e-12 {
			t.Fatalf("value %d: %v -> %v (scale %v)", i, v[i], out[i], q.Scale)
		}
	}
}
