package quant

import "fmt"

// Chunked is a per-chunk symmetric quantization of a float64 vector: the
// vector is split into fixed-size chunks of Chunk values (the last chunk may
// be shorter) and each chunk carries its own scale, so one outlier weight
// only coarsens the resolution of its own chunk instead of the whole vector.
// value[i] ≈ Scales[i/Chunk] · code[i], code ∈ [−(2^(Bits−1)−1), 2^(Bits−1)−1].
type Chunked struct {
	Bits  int
	Chunk int // values per chunk, ≥ 1
	N     int // total values
	// Scales holds one scale per chunk, NumChunks(N, Chunk) entries. A zero
	// scale marks a degenerate chunk (all-zero or non-finite input) whose
	// codes are all zero and which dequantizes to exact zeros — never NaN.
	Scales []float64
	// Codes are the packed two's-complement codes. Every chunk starts at a
	// fresh byte boundary (codeBytes(chunkLen, Bits) bytes per chunk), so a
	// chunk is decodable without unpacking its predecessors.
	Codes []byte
}

// NumChunks returns the chunk count of an n-value vector at the given chunk
// size: ceil(n/chunk).
func NumChunks(n, chunk int) int {
	if chunk < 1 {
		panic(fmt.Sprintf("quant: chunk must be ≥ 1, got %d", chunk))
	}
	return (n + chunk - 1) / chunk
}

// QuantizeChunks compresses v at the given bit width (2..8) with an
// independent symmetric scale per chunk of `chunk` values. All-zero chunks
// (and chunks containing non-finite values) encode with scale 0 and
// dequantize to exact zeros.
func QuantizeChunks(v []float64, bits, chunk int) Chunked {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("quant: bits must be in [2,8], got %d", bits))
	}
	nc := NumChunks(len(v), chunk)
	c := Chunked{
		Bits:   bits,
		Chunk:  chunk,
		N:      len(v),
		Scales: make([]float64, nc),
	}
	total := 0
	for i := 0; i < nc; i++ {
		total += codeBytes(chunkLen(len(v), chunk, i), bits)
	}
	c.Codes = make([]byte, total)
	off := 0
	for i := 0; i < nc; i++ {
		part := v[i*chunk : i*chunk+chunkLen(len(v), chunk, i)]
		c.Scales[i] = chunkScale(part, bits)
		nb := codeBytes(len(part), bits)
		packCodes(c.Codes[off:off+nb], part, c.Scales[i], bits)
		off += nb
	}
	return c
}

// chunkLen returns the value count of chunk i of an n-value vector.
func chunkLen(n, chunk, i int) int {
	if rem := n - i*chunk; rem < chunk {
		return rem
	}
	return chunk
}

// Dequantize reconstructs the approximate float vector.
func (c Chunked) Dequantize() []float64 {
	out := make([]float64, c.N)
	off := 0
	for i := range c.Scales {
		l := chunkLen(c.N, c.Chunk, i)
		nb := codeBytes(l, c.Bits)
		unpackCodes(out[i*c.Chunk:i*c.Chunk+l], c.Codes[off:off+nb], c.Scales[i], c.Bits)
		off += nb
	}
	return out
}

// Bytes returns the serialized wire size of the chunked vector: the frame
// header plus one float64 scale and the packed codes per chunk. It equals
// len(Encode(c)).
func (c Chunked) Bytes() int {
	return frameHeaderSize + 8*len(c.Scales) + len(c.Codes)
}

// MaxError returns the worst-case absolute reconstruction error across all
// chunks, max(Scales)/2.
func (c Chunked) MaxError() float64 {
	m := 0.0
	for _, s := range c.Scales {
		if s > m {
			m = s
		}
	}
	return m / 2
}

// CompressRatio returns float32-bytes / wire-bytes, the communication saving
// relative to uncompressed float32 uploads.
func (c Chunked) CompressRatio() float64 {
	if c.Bytes() == 0 {
		return 0
	}
	return float64(4*c.N) / float64(c.Bytes())
}
