// Command fedprophet runs a single federated adversarial training experiment
// with a chosen method and prints the paper's evaluation metrics. It is a
// thin shell over the public pkg/fedprophet API: methods resolve through the
// registry, per-round telemetry streams as it happens, Ctrl-C aborts
// gracefully at the next round boundary (printing the partial result), and
// -parallel trains a round's clients concurrently without changing the
// seeded result.
//
// Usage:
//
//	fedprophet -method FedProphet -workload cifar -hetero balanced -scale quick -parallel 4
//
// Run with -list to print the registered methods.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"fedprophet/pkg/fedprophet"
)

func main() {
	var (
		method   = flag.String("method", "FedProphet", "training method (see -list)")
		workload = flag.String("workload", "cifar", "workload: cifar or caltech")
		hetero   = flag.String("hetero", "balanced", "balanced or unbalanced")
		scale    = flag.String("scale", "quick", "quick, trimmed or full")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 1, "concurrent client trainers per round")
		rounds   = flag.Int("rounds", 0, "override baseline communication rounds (0 = scale default; FedProphet uses -rounds-per-module)")
		rpm      = flag.Int("rounds-per-module", 0, "override FedProphet rounds per module stage (0 = scale default)")
		verbose  = flag.Bool("v", false, "stream per-round telemetry")
		list     = flag.Bool("list", false, "list registered methods and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(fedprophet.Methods(), "\n"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []fedprophet.Option{
		fedprophet.WithMethod(*method),
		fedprophet.WithWorkload(*workload),
		fedprophet.WithHeterogeneity(*hetero),
		fedprophet.WithScale(*scale),
		fedprophet.WithSeed(*seed),
		fedprophet.WithClientParallelism(*parallel),
	}
	if *rounds > 0 {
		opts = append(opts, fedprophet.WithRounds(*rounds))
	}
	if *rpm > 0 {
		opts = append(opts, fedprophet.WithRoundsPerModule(*rpm))
	}
	if *verbose {
		opts = append(opts, fedprophet.WithRoundHook(func(m fedprophet.RoundMetrics) {
			fmt.Printf("round %3d  module %d  loss %.4f  latency %.3fs (compute %.3fs, access %.3fs)\n",
				m.Round, m.Module+1, m.Loss, m.Latency.Total(), m.Latency.Compute, m.Latency.DataAccess)
		}))
	}

	fmt.Printf("method=%s workload=%s hetero=%s scale=%s parallel=%d seed=%d\n",
		*method, *workload, *hetero, *scale, *parallel, *seed)
	res, err := fedprophet.Run(ctx, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run aborted: %v\n", err)
		if res != nil && len(res.History) > 0 {
			fmt.Fprintf(os.Stderr, "partial progress: %d rounds, simulated %.3fs\n",
				len(res.History), res.Latency.Total())
		}
		os.Exit(1)
	}

	fmt.Printf("Clean Acc: %.2f%%\n", res.CleanAcc*100)
	fmt.Printf("PGD Acc:   %.2f%%\n", res.PGDAcc*100)
	fmt.Printf("AA Acc:    %.2f%%\n", res.AAAcc*100)
	fmt.Printf("Training time: %.3fs (compute %.3fs, data access %.3fs)\n",
		res.Latency.Total(), res.Latency.Compute, res.Latency.DataAccess)
	// Sorted keys: the CLI's determinism contract is byte-identical stdout
	// for identical seeded runs, and map range order would break it.
	keys := make([]string, 0, len(res.Extra))
	for k := range res.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s: %.4g\n", k, res.Extra[k])
	}
}
