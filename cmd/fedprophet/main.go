// Command fedprophet runs a single federated adversarial training experiment
// with a chosen method and prints the paper's evaluation metrics.
//
// Usage:
//
//	fedprophet -method FedProphet -workload cifar -hetero balanced -scale quick
//
// Methods: jFAT, FedDF-AT, FedET-AT, HeteroFL-AT, FedDrop-AT, FedRolex-AT,
// FedRBN, FedProphet.
package main

import (
	"flag"
	"fmt"
	"os"

	"fedprophet/internal/device"
	"fedprophet/internal/exp"
	"fedprophet/internal/fl"
)

func main() {
	var (
		method   = flag.String("method", "FedProphet", "training method")
		workload = flag.String("workload", "cifar", "workload: cifar or caltech")
		hetero   = flag.String("hetero", "balanced", "balanced or unbalanced")
		scale    = flag.String("scale", "quick", "quick or full")
		seed     = flag.Int64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "print per-round telemetry")
	)
	flag.Parse()

	s := exp.QuickScale()
	if *scale == "full" {
		s = exp.FullScale()
	}
	var w exp.Workload
	switch *workload {
	case "cifar":
		w = exp.CIFAR10S()
	case "caltech":
		w = exp.Caltech256S(*scale != "full")
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	h := device.Balanced
	if *hetero == "unbalanced" {
		h = device.Unbalanced
	}

	var chosen fl.Method
	for _, m := range exp.Methods(w, s) {
		if m.Name() == *method {
			chosen = m
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	env := exp.NewEnv(w, s, h, *seed)
	fmt.Printf("method=%s workload=%s hetero=%s scale=%s clients=%d rounds≈%d\n",
		chosen.Name(), w.Name, h, s.Name, env.Cfg.NumClients, env.Cfg.Rounds)
	res := chosen.Run(env)

	if *verbose {
		for _, r := range res.History {
			fmt.Printf("round %3d  module %d  loss %.4f  latency %.3fs (compute %.3fs, access %.3fs)\n",
				r.Round, r.Module+1, r.Loss, r.Latency.Total(), r.Latency.Compute, r.Latency.DataAccess)
		}
	}
	fmt.Printf("Clean Acc: %.2f%%\n", res.CleanAcc*100)
	fmt.Printf("PGD Acc:   %.2f%%\n", res.PGDAcc*100)
	fmt.Printf("AA Acc:    %.2f%%\n", res.AAAcc*100)
	fmt.Printf("Training time: %.3fs (compute %.3fs, data access %.3fs)\n",
		res.Latency.Total(), res.Latency.Compute, res.Latency.DataAccess)
	for k, v := range res.Extra {
		fmt.Printf("%s: %.4g\n", k, v)
	}
}
