// Command benchconv records the convolution-backend performance baseline:
// forward+backward wall time of representative conv layers at batch 16 under
// the direct-loop and im2col/GEMM backends, written as JSON so the repo's
// perf trajectory (BENCH_conv.json) is machine-comparable across PRs.
//
//	go run ./cmd/benchconv -out BENCH_conv.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

type caseResult struct {
	Name       string  `json:"name"`
	Batch      int     `json:"batch"`
	InC        int     `json:"in_c"`
	OutC       int     `json:"out_c"`
	H          int     `json:"h"`
	W          int     `json:"w"`
	Kernel     int     `json:"kernel"`
	Stride     int     `json:"stride"`
	Pad        int     `json:"pad"`
	DirectNsOp int64   `json:"direct_ns_op"`
	GEMMNsOp   int64   `json:"gemm_ns_op"`
	Speedup    float64 `json:"speedup"`
}

type report struct {
	Bench      string       `json:"bench"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Cases      []caseResult `json:"cases"`
	// MeanSpeedup is the geometric mean of per-case speedups.
	MeanSpeedup float64 `json:"mean_speedup"`
}

func benchBackend(backend nn.ConvBackend, batch, inC, outC, h, w, k, stride, pad int) int64 {
	r := testing.Benchmark(func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		c := nn.NewConv2D(inC, outC, k, stride, pad, false, rng)
		c.Backend = backend
		x := tensor.Randn(rng, 1, batch, inC, h, w)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := c.Forward(x, true)
			nn.ZeroGrads(c)
			c.Backward(out)
		}
	})
	return r.NsPerOp()
}

func main() {
	out := flag.String("out", "BENCH_conv.json", "output JSON path (- for stdout)")
	batch := flag.Int("batch", 16, "batch size")
	flag.Parse()

	// The CIFAR10-S VGG16-S stack at width 8: the first conv, the widest
	// 16×16 stage, a mid-depth 8×8 stage, and a strided ResNet-style
	// downsampling conv.
	cases := []struct {
		name                            string
		inC, outC, h, w, k, stride, pad int
	}{
		{"first_3to8_16x16", 3, 8, 16, 16, 3, 1, 1},
		{"mid_16to32_16x16", 16, 32, 16, 16, 3, 1, 1},
		{"mid_32to32_8x8", 32, 32, 8, 8, 3, 1, 1},
		{"deep_64to64_4x4", 64, 64, 4, 4, 3, 1, 1},
		{"strided_32to64_8x8", 32, 64, 8, 8, 3, 2, 1},
	}

	rep := report{
		Bench:      "conv_forward_backward",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	logMean := 0.0
	for _, cs := range cases {
		d := benchBackend(nn.ConvDirect, *batch, cs.inC, cs.outC, cs.h, cs.w, cs.k, cs.stride, cs.pad)
		g := benchBackend(nn.ConvGEMM, *batch, cs.inC, cs.outC, cs.h, cs.w, cs.k, cs.stride, cs.pad)
		sp := float64(d) / float64(g)
		rep.Cases = append(rep.Cases, caseResult{
			Name: cs.name, Batch: *batch,
			InC: cs.inC, OutC: cs.outC, H: cs.h, W: cs.w,
			Kernel: cs.k, Stride: cs.stride, Pad: cs.pad,
			DirectNsOp: d, GEMMNsOp: g, Speedup: round2(sp),
		})
		logMean += math.Log(sp)
		fmt.Fprintf(os.Stderr, "%-22s direct %12d ns/op   gemm %12d ns/op   %.2fx\n",
			cs.name, d, g, sp)
	}
	rep.MeanSpeedup = round2(math.Exp(logMean / float64(len(cases))))

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (mean speedup %.2fx at GOMAXPROCS=%d)\n",
		*out, rep.MeanSpeedup, rep.GoMaxProcs)
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
