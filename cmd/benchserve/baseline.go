package main

// baselineServer is the pre-shard fldist parameter server, preserved
// verbatim in spirit as the benchmark's control: every Pull, Push and round
// poll serializes on one sync.Mutex, push bodies are buffered whole with
// io.ReadAll, frames are decoded into freshly allocated vectors, and the
// model-sized reconstruct/validate work happens inside the global critical
// section. It speaks the same wire protocol (docs/WIRE.md) as the sharded
// server, so the identical client fleet runs against both and the measured
// difference is the server architecture alone. Do not "improve" this file —
// its value is being the frozen single-mutex reference.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"fedprophet/internal/fl"
	"fedprophet/internal/quant"
)

const (
	codecHeaderName  = "X-Fldist-Codec"
	contentTypeModel = "application/x-fldist-model"
	contentTypeDelta = "application/x-fldist-delta"
	modelMagic       = "FPM1"
	updateMagic      = "FPU1"
	envVersion       = 1
)

type baselineServer struct {
	mu              sync.Mutex
	round           int
	params          []float64
	bn              []float64
	updatesPerRound int

	pendingParams [][]float64
	pendingBN     [][]float64
	pendingW      []float64
	pendingIDs    map[int]bool

	roundsCompleted int
	updates         int64

	served  map[codecParams]*baseServed
	downErr map[codecParams][]float64
}

type codecParams struct{ bits, chunk int }

type baseServed struct {
	body    []byte
	params  []float64
	bn      []float64
	nextErr []float64
}

func newBaselineServer(initParams, initBN []float64, updatesPerRound int) *baselineServer {
	return &baselineServer{
		params:          append([]float64(nil), initParams...),
		bn:              append([]float64(nil), initBN...),
		updatesPerRound: updatesPerRound,
		pendingIDs:      map[int]bool{},
		served:          map[codecParams]*baseServed{},
		downErr:         map[codecParams][]float64{},
	}
}

func (s *baselineServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/round", s.handleRound)
	mux.HandleFunc("/update", s.handleUpdate)
	return mux
}

// handleRound takes the global mutex, exactly as the pre-shard server did —
// under load, round polls contend with in-flight aggregation.
func (s *baselineServer) handleRound(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	round := s.round
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "%d", round)
}

func (s *baselineServer) handleModel(w http.ResponseWriter, r *http.Request) {
	comp, ok := parseCodecHeader(r.Header.Get(codecHeaderName))
	if !ok {
		http.Error(w, "benchserve baseline: compressed pulls only", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	sm := s.servedModelLocked(comp)
	body := sm.body
	s.mu.Unlock()
	w.Header().Set(codecHeaderName, r.Header.Get(codecHeaderName))
	w.Header().Set("Content-Type", contentTypeModel)
	_, _ = w.Write(body)
}

func (s *baselineServer) servedModelLocked(c codecParams) *baseServed {
	if sm, ok := s.served[c]; ok {
		return sm
	}
	v := append([]float64(nil), s.params...)
	if e := s.downErr[c]; len(e) == len(v) {
		for i := range v {
			v[i] += e[i]
		}
	}
	qp := quant.QuantizeChunks(v, c.bits, c.chunk)
	body := make([]byte, 0, 9)
	body = append(body, modelMagic...)
	body = append(body, envVersion)
	body = binary.LittleEndian.AppendUint32(body, uint32(s.round))
	body = append(body, quant.Encode(qp)...)
	body = append(body, quant.EncodeRaw(s.bn)...)
	sm := &baseServed{
		body:   body,
		params: qp.Dequantize(),
		bn:     append([]float64(nil), s.bn...),
	}
	for i := range v {
		v[i] -= sm.params[i]
	}
	sm.nextErr = v
	s.served[c] = sm
	return sm
}

func (s *baselineServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") != contentTypeDelta {
		http.Error(w, "benchserve baseline: delta updates only", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	limit := 4096 + 16*int64(len(s.params)+len(s.bn))
	s.mu.Unlock()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading update: %v", err), http.StatusBadRequest)
		return
	}
	if len(body) < 21 || string(body[:4]) != updateMagic || body[4] != envVersion {
		http.Error(w, "bad update envelope", http.StatusBadRequest)
		return
	}
	clientID := int(binary.LittleEndian.Uint32(body[5:9]))
	round := int(binary.LittleEndian.Uint32(body[9:13]))
	weight := math.Float64frombits(binary.LittleEndian.Uint64(body[13:21]))
	pf, rest, err := quant.DecodeFirst(body[21:])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bf, rest, err := quant.DecodeFirst(rest)
	if err != nil || len(rest) != 0 {
		http.Error(w, "bad update frames", http.StatusBadRequest)
		return
	}
	if pf.IsRaw() {
		http.Error(w, "delta update must be quantized", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if round != s.round {
		http.Error(w, fmt.Sprintf("stale round %d, server at %d", round, s.round), http.StatusConflict)
		return
	}
	if pf.Len() != len(s.params) || bf.Len() != len(s.bn) {
		http.Error(w, "shape mismatch", http.StatusBadRequest)
		return
	}
	if !(weight > 0) || math.IsInf(weight, 0) {
		http.Error(w, "bad weight", http.StatusBadRequest)
		return
	}
	sm := s.servedModelLocked(codecParams{pf.Bits, pf.Chunk})
	params := pf.Vector()
	for i := range params {
		params[i] += sm.params[i]
	}
	bn := bf.Vector()
	for i := range bn {
		bn[i] += sm.bn[i]
	}
	for _, vec := range [][]float64{params, bn} {
		for _, x := range vec {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				http.Error(w, "non-finite value in update", http.StatusBadRequest)
				return
			}
		}
	}
	if s.pendingIDs[clientID] {
		w.Header().Set("X-Fldist-Duplicate", "1")
		w.WriteHeader(http.StatusOK)
		return
	}
	s.pendingIDs[clientID] = true
	s.pendingParams = append(s.pendingParams, params)
	s.pendingBN = append(s.pendingBN, bn)
	s.pendingW = append(s.pendingW, weight)
	s.updates++
	if len(s.pendingParams) >= s.updatesPerRound {
		s.params = fl.WeightedAverage(s.pendingParams, s.pendingW)
		if len(s.bn) > 0 {
			s.bn = fl.WeightedAverage(s.pendingBN, s.pendingW)
		}
		s.pendingParams, s.pendingBN, s.pendingW = nil, nil, nil
		s.pendingIDs = map[int]bool{}
		s.downErr = make(map[codecParams][]float64, len(s.served))
		for c, sm := range s.served {
			s.downErr[c] = sm.nextErr
		}
		s.served = map[codecParams]*baseServed{}
		s.round++
		s.roundsCompleted++
	}
	w.WriteHeader(http.StatusOK)
}

func (s *baselineServer) stats() (round, roundsCompleted int, updates int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round, s.roundsCompleted, s.updates
}

// parseCodecHeader accepts exactly the fpq1;bits=B;chunk=C form the bench
// clients send.
func parseCodecHeader(v string) (codecParams, bool) {
	var bits, chunk int
	if _, err := fmt.Sscanf(v, "fpq1;bits=%d;chunk=%d", &bits, &chunk); err != nil {
		return codecParams{}, false
	}
	if bits < 2 || bits > 8 || chunk < 1 {
		return codecParams{}, false
	}
	return codecParams{bits, chunk}, true
}
