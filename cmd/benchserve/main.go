// Command benchserve measures the parameter server's aggregation plane under
// concurrent load: N in-process clients hammer one server over real HTTP
// with compressed delta pushes, against both the frozen pre-shard
// single-mutex implementation (baseline.go) and the current sharded,
// streaming server (internal/fldist). It reports updates/sec, client-side
// push latency percentiles, steady-state push-path allocations (measured
// through the HTTP handler with no network noise), and heap peaks, and
// writes the JSON baseline the repo tracks as BENCH_serve.json.
//
//	go run ./cmd/benchserve -out BENCH_serve.json
//	go run ./cmd/benchserve -smoke        # 1-second N=8 CI smoke, no file
//
// The synthetic clients are deliberately O(1) per push after setup — the
// delta body is prepared once and only its round/client fields are patched —
// so the measured throughput is the server's capacity, not the fleet's
// training speed. Both servers speak the identical wire protocol and are
// driven by the identical fleet; the measured difference is the server
// architecture alone.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedprophet/internal/fldist"
	"fedprophet/internal/quant"
)

type phaseResult struct {
	Clients           int     `json:"clients"`
	Server            string  `json:"server"` // "single-mutex" or "sharded"
	Shards            int     `json:"shards,omitempty"`
	Seconds           float64 `json:"seconds"`
	Updates           int64   `json:"updates"`
	Rounds            int     `json:"rounds"`
	UpdatesPerSec     float64 `json:"updates_per_sec"`
	PushP50MS         float64 `json:"push_p50_ms"`
	PushP99MS         float64 `json:"push_p99_ms"`
	HeapPeakBytes     uint64  `json:"heap_peak_bytes"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

type allocResult struct {
	Server      string  `json:"server"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// stragglerResult is one straggler phase: a fleet with one artificially
// slow member, run against the synchronous quorum or against buffered
// bounded-staleness aggregation. WastedPasses counts training passes thrown
// away on 409 (the straggler pathology buffered mode eliminates);
// StragglerUpdates counts the slow client's contributions that made it into
// the model.
type stragglerResult struct {
	Clients          int     `json:"clients"`
	Mode             string  `json:"mode"` // "sync-quorum" or "buffered-async"
	CommitThreshold  int     `json:"commit_threshold"`
	MaxStaleness     int     `json:"max_staleness,omitempty"`
	TrainMS          float64 `json:"train_ms"`
	StragglerFactor  int     `json:"straggler_factor"`
	Seconds          float64 `json:"seconds"`
	Updates          int64   `json:"updates"`
	Rounds           int     `json:"rounds"`
	UpdatesPerSec    float64 `json:"updates_per_sec"`
	WastedPasses     int64   `json:"wasted_training_passes"`
	StragglerUpdates int64   `json:"straggler_updates"`
}

// runMeta records the machine and toolchain the numbers were measured on, so
// a tracked BENCH_serve.json is interpretable after the hardware changes.
// The timestamp is passed in (-timestamp, typically `date -u` from make)
// rather than sampled, keeping reruns on identical inputs byte-identical.
type runMeta struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	Timestamp  string `json:"timestamp,omitempty"`
}

type report struct {
	Meta           runMeta           `json:"meta"`
	Params         int               `json:"params"`
	Bits           int               `json:"bits"`
	Chunk          int               `json:"chunk"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	Shards         int               `json:"shards"`
	Results        []phaseResult     `json:"results"`
	PushAllocs     []allocResult     `json:"push_allocs"`
	AllocReduction float64           `json:"alloc_reduction"`
	Straggler      []stragglerResult `json:"straggler,omitempty"`
	AsyncSpeedup   float64           `json:"async_speedup_vs_sync,omitempty"`
	Hierarchical   []hierResult      `json:"hierarchical,omitempty"`
	Pull           []pullResult      `json:"pull,omitempty"`
	PullSpeedup    float64           `json:"pull_speedup_vs_baseline,omitempty"`
	WAL            []walResult       `json:"wal,omitempty"`
	// WALOverheadFrac is the buffered-phase throughput fraction the WAL
	// costs: 1 − (updates/sec with WAL)/(updates/sec without).
	WALOverheadFrac float64 `json:"wal_overhead_frac,omitempty"`
}

func main() {
	if dir := os.Getenv(walChildEnv); dir != "" {
		runWALChild(dir)
		return
	}
	var (
		out       = flag.String("out", "BENCH_serve.json", "output JSON path (empty = don't write)")
		nParams   = flag.Int("params", 50000, "synthetic model size (float64 values)")
		bits      = flag.Int("bits", 8, "delta quantization bit width")
		chunk     = flag.Int("chunk", 256, "values per quantization scale")
		clients   = flag.String("clients", "4,16,64", "comma-separated concurrent client counts")
		duration  = flag.Duration("duration", 3*time.Second, "wall-clock per phase")
		shards    = flag.Int("shards", 0, "shard count for the sharded server (0 = server default)")
		seed      = flag.Int64("seed", 1, "synthetic model seed")
		train     = flag.Duration("train", 20*time.Millisecond, "simulated local-training time per round in the straggler phases")
		smoke     = flag.Bool("smoke", false, "CI smoke: N=8 only, short phases, no output file")
		smokeEdge = flag.Bool("smoke-edge", false, "CI topology check: 2 edges × 4 clients vs 8 flat over real HTTP, bit-identical or fail")
		smokePull = flag.Bool("smoke-pull", false, "CI serve-path check: ~2s high-fan-out pull phase under cache churn against both servers, no output file")
		smokeWAL  = flag.Bool("smoke-wal", false, "CI crash drill: SIGKILL a WAL-backed child server mid-round twice, recover, verify bit-identity, no output file")
		pullN     = flag.Int("pull-clients", 256, "concurrent pullers in the pull-heavy phase")
		pullSize  = flag.Int("pull-params", 1<<20, "synthetic model size (float64 values) of the pull-heavy phase")
		timestamp = flag.String("timestamp", "", "run timestamp recorded in the output metadata (e.g. `date -u +%Y-%m-%dT%H:%M:%SZ`)")
	)
	flag.Parse()
	if *smokeEdge {
		runSmokeEdge()
		return
	}
	if *smokePull {
		runSmokePull()
		return
	}
	if *smokeWAL {
		runSmokeWAL()
		return
	}
	stragglerN := 16
	if *smoke {
		*clients, *duration, *out = "8", 600*time.Millisecond, ""
		*train = 10 * time.Millisecond
		stragglerN = 8
	}

	var ns []int
	for _, f := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			log.Fatalf("benchserve: bad -clients entry %q", f)
		}
		ns = append(ns, n)
	}

	rng := rand.New(rand.NewSource(*seed))
	initParams := make([]float64, *nParams)
	for i := range initParams {
		initParams[i] = rng.NormFloat64()
	}

	rep := report{
		Meta: runMeta{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
			Timestamp:  *timestamp,
		},
		Params: *nParams, Bits: *bits, Chunk: *chunk, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	log.Printf("benchserve: %d params, %d-bit/%d-chunk deltas, GOMAXPROCS=%d, NumCPU=%d, %s",
		*nParams, *bits, *chunk, rep.Meta.GOMAXPROCS, rep.Meta.NumCPU, rep.Meta.GoVersion)

	for _, n := range ns {
		base := runPhase(newBaselineHandler(initParams, n), "single-mutex", n, *duration, initParams, *bits, *chunk)
		srv := fldist.NewServer(initParams, nil, n, fldist.WithShards(*shards))
		rep.Shards = srv.Shards()
		shard := runPhase(srv.Handler(), "sharded", n, *duration, initParams, *bits, *chunk)
		shard.Shards = srv.Shards()
		if base.UpdatesPerSec > 0 {
			shard.SpeedupVsBaseline = shard.UpdatesPerSec / base.UpdatesPerSec
		}
		log.Printf("N=%-3d single-mutex %8.0f up/s (p50 %.2fms p99 %.2fms) | sharded %8.0f up/s (p50 %.2fms p99 %.2fms) | %.2fx",
			n, base.UpdatesPerSec, base.PushP50MS, base.PushP99MS,
			shard.UpdatesPerSec, shard.PushP50MS, shard.PushP99MS, shard.SpeedupVsBaseline)
		rep.Results = append(rep.Results, base, shard)
	}

	// Steady-state push-path allocations, measured straight through the HTTP
	// handlers with a reused request and a no-op response writer, so the
	// numbers are the servers' own.
	baseAllocs, baseBytes := measurePushAllocs(func(q int) http.Handler {
		return newBaselineHandler(initParams, q)
	}, initParams, *bits, *chunk)
	shardAllocs, shardBytes := measurePushAllocs(func(q int) http.Handler {
		return fldist.NewServer(initParams, nil, q, fldist.WithShards(*shards)).Handler()
	}, initParams, *bits, *chunk)
	rep.PushAllocs = []allocResult{
		{Server: "single-mutex", AllocsPerOp: baseAllocs, BytesPerOp: baseBytes},
		{Server: "sharded", AllocsPerOp: shardAllocs, BytesPerOp: shardBytes},
	}
	if shardAllocs > 0 {
		rep.AllocReduction = baseAllocs / shardAllocs
	}
	log.Printf("push allocs/op: single-mutex %.0f (%.0f B) | sharded %.0f (%.0f B) | %.1fx fewer",
		baseAllocs, baseBytes, shardAllocs, shardBytes, rep.AllocReduction)

	// Straggler phases: the same fleet with one 4×-slow member and a commit
	// threshold of N−1, under the synchronous quorum (the straggler's every
	// pass lands stale and is thrown away) and under buffered
	// bounded-staleness aggregation (the stale pass is admitted,
	// down-weighted).
	syncStr := runStragglerPhase(false, stragglerN, *duration, *train, 4, initParams, *bits, *chunk, *shards)
	asyncStr := runStragglerPhase(true, stragglerN, *duration, *train, 4, initParams, *bits, *chunk, *shards)
	rep.Straggler = []stragglerResult{syncStr, asyncStr}
	if syncStr.UpdatesPerSec > 0 {
		rep.AsyncSpeedup = asyncStr.UpdatesPerSec / syncStr.UpdatesPerSec
	}
	log.Printf("straggler N=%d (train %v, straggler 4x): sync %6.0f up/s, %d wasted passes, %d straggler updates | async %6.0f up/s, %d wasted, %d straggler updates | %.2fx up/s",
		stragglerN, *train,
		syncStr.UpdatesPerSec, syncStr.WastedPasses, syncStr.StragglerUpdates,
		asyncStr.UpdatesPerSec, asyncStr.WastedPasses, asyncStr.StragglerUpdates, rep.AsyncSpeedup)

	// WAL overhead phase: the identical buffered fleet — training `-train`
	// per round, like the straggler phases — with and without the write-ahead
	// log underneath: what crash safety costs a deployed federation in
	// updates/sec.
	walOff := runWALPhase(stragglerN, *duration, *train, initParams, *bits, *chunk, *shards, "")
	walDir, err := os.MkdirTemp("", "benchserve-wal-")
	if err != nil {
		log.Fatal(err)
	}
	walOn := runWALPhase(stragglerN, *duration, *train, initParams, *bits, *chunk, *shards, walDir)
	os.RemoveAll(walDir)
	rep.WAL = []walResult{walOff, walOn}
	if walOff.UpdatesPerSec > 0 {
		rep.WALOverheadFrac = 1 - walOn.UpdatesPerSec/walOff.UpdatesPerSec
	}
	log.Printf("wal N=%d: off %6.0f up/s | on %6.0f up/s (%d records, %.1f MB logged) | %.1f%% overhead",
		stragglerN, walOff.UpdatesPerSec, walOn.UpdatesPerSec,
		walOn.WALRecords, float64(walOn.WALBytes)/(1<<20), 100*rep.WALOverheadFrac)

	// Hierarchical phase: the same client count flat vs split into cohorts
	// behind edge aggregators — the root-side admission reduction is the
	// tier's whole point (≥ the cohort fan-in by construction).
	hierEdges, hierFanIn := 4, 4
	if *smoke {
		hierEdges = 2
	}
	flatH := runHierPhase(0, hierEdges*hierFanIn, *duration, initParams, *bits, *chunk, *shards)
	tierH := runHierPhase(hierEdges, hierFanIn*hierEdges, *duration, initParams, *bits, *chunk, *shards)
	rep.Hierarchical = []hierResult{flatH, tierH}
	log.Printf("hierarchical N=%d: flat %d client pushes → %d root admissions | %d edges×%d %d client pushes → %d root admissions (%.1fx reduction)",
		flatH.Clients, flatH.ClientPushes, flatH.RootAdmissions,
		hierEdges, hierFanIn, tierH.ClientPushes, tierH.RootAdmissions, tierH.RootPushReduction)

	// Pull-heavy phase: the serve plane under high read fan-out on a model
	// big enough (default 1M params) for the O(model) serve work to be
	// visible, with four codec variants live and a pusher fleet keeping
	// aggregation (and so cache invalidation) running throughout. Scaled
	// down (not skipped) under -smoke so the path stays exercised;
	// -smoke-pull is the dedicated CI entry.
	pn, ps, window := *pullN, *pullSize, 150*time.Millisecond
	pullRounds := int(*duration / (window + 180*time.Millisecond))
	if pullRounds < 6 {
		pullRounds = 6
	}
	if *smoke {
		pn, ps, pullRounds, window = 32, 100_000, 4, 50*time.Millisecond
	}
	rep.Pull = runPullBench(pn, ps, pullRounds, window, *seed, *shards)
	if sp := rep.Pull[len(rep.Pull)-1].SpeedupVsBaseline; sp > 0 {
		rep.PullSpeedup = sp
	}

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

func newBaselineHandler(initParams []float64, quorum int) http.Handler {
	return newBaselineServer(initParams, nil, quorum).handler()
}

// runPhase drives n concurrent synthetic clients against one server for
// about d wall-clock and reports the measured throughput and latency.
func runPhase(h http.Handler, name string, n int, d time.Duration, initParams []float64, bits, chunk int) phaseResult {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	transport := &http.Transport{MaxIdleConns: n * 2, MaxIdleConnsPerHost: n * 2}
	hc := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	runtime.GC()
	var heapPeak atomic.Uint64
	sampleCtx, stopSampling := context.WithCancel(context.Background())
	go func() {
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > heapPeak.Load() {
					heapPeak.Store(ms.HeapInuse)
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var wg sync.WaitGroup
	var updates atomic.Int64
	latencies := make([][]time.Duration, n)
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			latencies[id] = runClient(ctx, hc, url, id, initParams, bits, chunk, &updates)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopSampling()
	_ = hs.Close()

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(q*float64(len(all)-1))]) / float64(time.Millisecond)
	}
	total := updates.Load()
	return phaseResult{
		Clients:       n,
		Server:        name,
		Seconds:       elapsed.Seconds(),
		Updates:       total,
		Rounds:        int(total) / n,
		UpdatesPerSec: float64(total) / elapsed.Seconds(),
		PushP50MS:     pct(0.50),
		PushP99MS:     pct(0.99),
		HeapPeakBytes: heapPeak.Load(),
	}
}

// runClient is one synthetic fleet member: after preparing its delta body
// once, each round costs it a round poll, a 4-byte patch and one POST — all
// the heavy lifting happens server-side, which is what this benchmark
// measures. Counted pushes are recorded with their wall-clock latency.
func runClient(ctx context.Context, hc *http.Client, url string, id int,
	initParams []float64, bits, chunk int, updates *atomic.Int64) []time.Duration {
	body := makeDeltaBody(id, initParams, bits, chunk)

	// One negotiated pull up front (validates the server speaks the codec),
	// then the round-poll/push loop.
	round, ok := pullRound(ctx, hc, url, bits, chunk)
	if !ok {
		return nil
	}
	var lats []time.Duration
	reader := newNopReader(body)
	for ctx.Err() == nil {
		// The previous request has fully completed (hc.Do is synchronous),
		// so patching the shared body and rewinding the reader is safe.
		binary.LittleEndian.PutUint32(body[9:13], uint32(round))
		reader.off = 0
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/update", reader)
		if err != nil {
			return lats
		}
		req.ContentLength = int64(len(body))
		req.Header.Set("Content-Type", contentTypeDelta)
		t0 := time.Now()
		resp, err := hc.Do(req)
		if err != nil {
			return lats
		}
		lat := time.Since(t0)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && resp.Header.Get("X-Fldist-Duplicate") == "":
			updates.Add(1)
			lats = append(lats, lat)
			r, ok := awaitRound(ctx, hc, url, round)
			if !ok {
				return lats
			}
			round = r
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict:
			r, ok := pollRound(ctx, hc, url)
			if !ok {
				return lats
			}
			if r == round { // duplicate of a still-open round: wait it out
				if r, ok = awaitRound(ctx, hc, url, round); !ok {
					return lats
				}
			}
			round = r
		default:
			b, _ := io.ReadAll(resp.Body)
			log.Fatalf("benchserve: client %d push: %s: %s", id, resp.Status, b)
		}
	}
	return lats
}

// makeDeltaBody builds one client's reusable compressed push body: a
// deterministic per-client delta, quantized once. The delta is independent
// of the pulled base, so the body bytes are reusable across rounds with
// only the round field (bytes 9:13) patched per push.
func makeDeltaBody(id int, initParams []float64, bits, chunk int) []byte {
	rng := rand.New(rand.NewSource(int64(1000 + id)))
	delta := make([]float64, len(initParams))
	for i := range delta {
		delta[i] = 1e-3 * rng.NormFloat64()
	}
	q := quant.QuantizeChunks(delta, bits, chunk)
	body := make([]byte, 0, 21+len(initParams))
	body = append(body, updateMagic...)
	body = append(body, envVersion)
	body = binary.LittleEndian.AppendUint32(body, uint32(id))
	body = binary.LittleEndian.AppendUint32(body, 0) // round, patched per push
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(0x3FF0000000000000)) // weight 1.0
	body = append(body, w[:]...)
	body = append(body, quant.Encode(q)...)
	body = append(body, quant.EncodeRaw(nil)...)
	return body
}

// runStragglerPhase drives a fleet of n clients — client 0 training factor×
// slower than the rest — against a commit threshold of n−1 for about d
// wall-clock, either under the synchronous quorum or under buffered
// bounded-staleness aggregation, and reports throughput plus
// wasted-training-pass accounting.
func runStragglerPhase(async bool, n int, d, train time.Duration, factor int,
	initParams []float64, bits, chunk, shards int) stragglerResult {
	commitK := n - 1
	const maxStale = 8
	mode := "sync-quorum"
	opts := []fldist.ServerOption{fldist.WithShards(shards)}
	if async {
		mode = "buffered-async"
		opts = append(opts, fldist.WithBufferedAggregation(commitK, maxStale))
	}
	srv := fldist.NewServer(initParams, nil, commitK, opts...)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()
	transport := &http.Transport{MaxIdleConns: n * 2, MaxIdleConnsPerHost: n * 2}
	hc := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var wg sync.WaitGroup
	var updates, wasted, stragglerUpdates atomic.Int64
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tt := train
			if id == 0 {
				tt = time.Duration(factor) * train
			}
			runStragglerClient(ctx, hc, url, id, tt, async, initParams, bits, chunk,
				&updates, &wasted, &stragglerUpdates)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	_ = hs.Close()

	total := updates.Load()
	res := stragglerResult{
		Clients:          n,
		Mode:             mode,
		CommitThreshold:  commitK,
		TrainMS:          float64(train) / float64(time.Millisecond),
		StragglerFactor:  factor,
		Seconds:          elapsed.Seconds(),
		Updates:          total,
		Rounds:           srv.RoundsCompleted(),
		UpdatesPerSec:    float64(total) / elapsed.Seconds(),
		WastedPasses:     wasted.Load(),
		StragglerUpdates: stragglerUpdates.Load(),
	}
	if async {
		res.MaxStaleness = maxStale
	}
	return res
}

// runStragglerClient is one straggler-phase fleet member: every loop
// iteration pulls the model (establishing the base round, exactly as the
// production client must), simulates one local training pass (a sleep of
// tt), then pushes. A 409 means the pass was trained for nothing — the
// client re-pulls and trains again. In async mode a counted push flows
// straight into the next pull→train→push (falling back to a round poll only
// when the client's own update is still the newest thing on the server, as
// the production async client does); in sync mode every counted push waits
// for the round barrier.
func runStragglerClient(ctx context.Context, hc *http.Client, url string, id int,
	tt time.Duration, async bool, initParams []float64, bits, chunk int,
	updates, wasted, stragglerUpdates *atomic.Int64) {
	body := makeDeltaBody(id, initParams, bits, chunk)
	reader := newNopReader(body)
	lastCounted := -1
	for ctx.Err() == nil {
		if lastCounted >= 0 {
			// Our previous push counted; if no commit landed since (async:
			// we outran the buffer; sync: the quorum is still filling),
			// training again from the same base would be dropped as a
			// duplicate. Probe the cheap /round — not a full model pull —
			// and wait for the round to move first, as the production
			// client does.
			r, ok := pollRound(ctx, hc, url)
			if !ok {
				return
			}
			if r == lastCounted {
				if _, ok := awaitRound(ctx, hc, url, lastCounted); !ok {
					return
				}
			}
		}
		round, ok := pullRound(ctx, hc, url, bits, chunk)
		if !ok {
			return
		}
		if !sleepCtx(ctx, tt) { // the training pass for base `round`
			return
		}
		binary.LittleEndian.PutUint32(body[9:13], uint32(round))
		reader.off = 0
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/update", reader)
		if err != nil {
			return
		}
		req.ContentLength = int64(len(body))
		req.Header.Set("Content-Type", contentTypeDelta)
		resp, err := hc.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		dup := resp.Header.Get("X-Fldist-Duplicate") != ""
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && !dup:
			updates.Add(1)
			if id == 0 {
				stragglerUpdates.Add(1)
			}
			lastCounted = round
			if !async {
				// Synchronous barrier: the next pull is useless until the
				// quorum-filling aggregation lands.
				if _, ok := awaitRound(ctx, hc, url, round); !ok {
					return
				}
			}
		case resp.StatusCode == http.StatusOK: // duplicate of a counted push
			lastCounted = round
		case resp.StatusCode == http.StatusConflict:
			wasted.Add(1) // the pass just trained is discarded
		default:
			log.Fatalf("benchserve: straggler client %d push: %s", id, resp.Status)
		}
	}
}

// sleepCtx sleeps for d or until ctx ends, reporting whether the full
// duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// nopReader is a rewindable ReadCloser over a byte slice, reused across
// requests so the client side stays allocation-quiet.
type nopReader struct {
	b   []byte
	off int
}

func newNopReader(b []byte) *nopReader { return &nopReader{b: b} }

func (r *nopReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

func (r *nopReader) Close() error { return nil }

// pullRound issues the negotiated GET /model and returns the round it
// belongs to.
func pullRound(ctx context.Context, hc *http.Client, url string, bits, chunk int) (int, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/model", nil)
	if err != nil {
		return 0, false
	}
	req.Header.Set(codecHeaderName, fmt.Sprintf("fpq1;bits=%d;chunk=%d", bits, chunk))
	resp, err := hc.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var hdr [9]byte
	if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("benchserve: pull: status %d err %v", resp.StatusCode, err)
	}
	io.Copy(io.Discard, resp.Body)
	return int(binary.LittleEndian.Uint32(hdr[5:9])), true
}

// pollRound reads GET /round once.
func pollRound(ctx context.Context, hc *http.Client, url string) (int, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/round", nil)
	if err != nil {
		return 0, false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false
	}
	r, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, false
	}
	return r, true
}

// awaitRound polls until the server's round exceeds round, with jittered
// exponential backoff (matching the production client's herd avoidance).
func awaitRound(ctx context.Context, hc *http.Client, url string, round int) (int, bool) {
	backoff := 2 * time.Millisecond
	const maxBackoff = 64 * time.Millisecond
	for {
		r, ok := pollRound(ctx, hc, url)
		if !ok {
			return 0, false
		}
		if r > round {
			return r, true
		}
		half := int64(backoff / 2)
		select {
		case <-ctx.Done():
			return 0, false
		case <-time.After(time.Duration(half + rand.Int63n(half+1))):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// nullWriter is a no-op ResponseWriter for the alloc measurement: it keeps
// harness allocations to a couple of objects so the per-op numbers belong to
// the servers.
type nullWriter struct {
	h    http.Header
	code int
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullWriter) WriteHeader(code int)        { w.code = code }

// measurePushAllocs drives compressed pushes straight through a fresh
// server's handler — no network — with quorum 16 (the headline fleet size),
// so every 16th push folds a round and the steady state includes aggregation
// and pooled-buffer recycling. It reports (allocations, bytes) per push
// averaged over 480 pushes after a warmup.
func measurePushAllocs(mk func(quorum int) http.Handler, initParams []float64, bits, chunk int) (allocsPerOp, bytesPerOp float64) {
	const quorum = 16
	const warmup = 48
	const measured = 480
	h := mk(quorum)

	rng := rand.New(rand.NewSource(77))
	delta := make([]float64, len(initParams))
	for i := range delta {
		delta[i] = 1e-3 * rng.NormFloat64()
	}
	q := quant.QuantizeChunks(delta, bits, chunk)
	body := make([]byte, 0, 21+len(initParams))
	body = append(body, updateMagic...)
	body = append(body, envVersion)
	body = binary.LittleEndian.AppendUint32(body, 0)
	body = binary.LittleEndian.AppendUint32(body, 0)
	var wbits [8]byte
	binary.LittleEndian.PutUint64(wbits[:], uint64(0x3FF0000000000000))
	body = append(body, wbits[:]...)
	body = append(body, quant.Encode(q)...)
	body = append(body, quant.EncodeRaw(nil)...)

	reader := newNopReader(body)
	req, err := http.NewRequest(http.MethodPost, "http://bench/update", nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", contentTypeDelta)
	req.ContentLength = int64(len(body))

	w := &nullWriter{h: http.Header{}}
	push := func(i int) {
		binary.LittleEndian.PutUint32(body[5:9], uint32(i%quorum))  // client id
		binary.LittleEndian.PutUint32(body[9:13], uint32(i/quorum)) // round
		reader.off = 0
		req.Body = reader
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != http.StatusOK && w.code != 0 {
			log.Fatalf("benchserve: alloc-measure push %d: status %d", i, w.code)
		}
	}
	for i := 0; i < warmup; i++ {
		push(i)
	}
	// A GC cycle mid-measurement would empty the sync.Pools and charge the
	// refill to whichever server happens to be measured; pause collection so
	// the counts reflect what the handler itself allocates.
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := warmup; i < warmup+measured; i++ {
		push(i)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / measured,
		float64(after.TotalAlloc-before.TotalAlloc) / measured
}
