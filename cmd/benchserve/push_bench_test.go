package main

// Microbenchmarks of one compressed push through each server's HTTP handler
// — no network, reused request machinery — so `go test -bench Push -benchmem
// ./cmd/benchserve` shows the steady-state per-push allocation footprint
// that BENCH_serve.json records (quorum 8: every 8th push folds a round, so
// aggregation and pooled-buffer recycling are included).

import (
	"encoding/binary"
	"math/rand"
	"net/http"
	"runtime"
	"testing"

	"fedprophet/internal/fldist"
	"fedprophet/internal/quant"
)

func benchPush(b *testing.B, mk func(quorum int) http.Handler) {
	b.Helper()
	const n = 50000
	const quorum = 8
	rng := rand.New(rand.NewSource(1))
	initParams := make([]float64, n)
	for i := range initParams {
		initParams[i] = rng.NormFloat64()
	}
	h := mk(quorum)
	delta := make([]float64, n)
	for i := range delta {
		delta[i] = 1e-3 * rng.NormFloat64()
	}
	q := quant.QuantizeChunks(delta, 8, 256)
	body := []byte(updateMagic)
	body = append(body, envVersion)
	body = binary.LittleEndian.AppendUint32(body, 0)
	body = binary.LittleEndian.AppendUint32(body, 0)
	body = binary.LittleEndian.AppendUint64(body, 0x3FF0000000000000) // weight 1.0
	body = append(body, quant.Encode(q)...)
	body = append(body, quant.EncodeRaw(nil)...)
	reader := newNopReader(body)
	req, err := http.NewRequest(http.MethodPost, "http://bench/update", nil)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", contentTypeDelta)
	req.ContentLength = int64(len(body))
	w := &nullWriter{h: http.Header{}}
	push := func(i int) {
		binary.LittleEndian.PutUint32(body[5:9], uint32(i%quorum))
		binary.LittleEndian.PutUint32(body[9:13], uint32(i/quorum))
		reader.off = 0
		req.Body = reader
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != http.StatusOK && w.code != 0 {
			b.Fatalf("push %d: status %d", i, w.code)
		}
	}
	for i := 0; i < 5*quorum; i++ {
		push(i)
	}
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push(5*quorum + i)
	}
}

func BenchmarkPushSingleMutex(b *testing.B) {
	benchPush(b, func(q int) http.Handler { return newBaselineHandler(make([]float64, 50000), q) })
}

func BenchmarkPushSharded(b *testing.B) {
	benchPush(b, func(q int) http.Handler {
		return fldist.NewServer(make([]float64, 50000), nil, q).Handler()
	})
}
