package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"fedprophet/internal/fldist"
)

// The durability plane: how much updates/sec the write-ahead log costs
// (runWALPhase, part of the tracked bench report) and whether a server
// SIGKILLed mid-round actually comes back where it left off (runSmokeWAL,
// the ~2s CI crash drill).

// walResult is one buffered-aggregation throughput phase, with or without
// the WAL underneath.
type walResult struct {
	Clients         int     `json:"clients"`
	WAL             bool    `json:"wal"`
	CommitThreshold int     `json:"commit_threshold"`
	MaxStaleness    int     `json:"max_staleness"`
	Seconds         float64 `json:"seconds"`
	Updates         int64   `json:"updates"`
	Rounds          int     `json:"rounds"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	WALBytes        int64   `json:"wal_bytes,omitempty"`
	WALRecords      int64   `json:"wal_records,omitempty"`
}

// runWALPhase drives n async clients — each simulating `train` of local
// compute per round, the same duty cycle as the straggler phases — against a
// buffered server for about d wall-clock, logging to walDir when non-empty.
// Identical fleet, identical server config — the measured difference is the
// WAL alone: one record appended per admission (wire frames for these
// compressed clients), one snapshot record per commit, and the paced
// background fsync behind WALSyncCommit (set WALSYNC=none to isolate the
// write volume from the fsync stalls). The train think-time matters: it is
// what a real
// federation gives the server to overlap log writes with, so this measures
// the throughput a deployed fleet loses to durability, not the cost of
// appending at synthetic zero-train saturation (WALBytes/Seconds in the
// report shows the sustained log bandwidth either way).
func runWALPhase(n int, d, train time.Duration, initParams []float64, bits, chunk, shards int, walDir string) walResult {
	commitK := n - 1
	const maxStale = 8
	opts := []fldist.ServerOption{
		fldist.WithShards(shards),
		fldist.WithBufferedAggregation(commitK, maxStale),
	}
	if walDir != "" {
		opts = append(opts, fldist.WithWAL(walDir))
		if os.Getenv("WALSYNC") == "none" {
			opts = append(opts, fldist.WithWALSyncPolicy(fldist.WALSyncNone))
		}
	}
	srv := fldist.NewServer(initParams, nil, commitK, opts...)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()
	transport := &http.Transport{MaxIdleConns: n * 2, MaxIdleConnsPerHost: n * 2}
	hc := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var wg sync.WaitGroup
	var updates, wasted, stragglerUpdates atomic.Int64
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runStragglerClient(ctx, hc, url, id, train, true, initParams, bits, chunk,
				&updates, &wasted, &stragglerUpdates)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Drain in-flight handlers before closing the server: a handler still
	// appending to the WAL after Close would count as a write failure.
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = hs.Shutdown(shCtx)
	shCancel()

	total := updates.Load()
	res := walResult{
		Clients:         n,
		WAL:             walDir != "",
		CommitThreshold: commitK,
		MaxStaleness:    maxStale,
		Seconds:         elapsed.Seconds(),
		Updates:         total,
		Rounds:          srv.RoundsCompleted(),
		UpdatesPerSec:   float64(total) / elapsed.Seconds(),
	}
	if ws := srv.Stats().WAL; ws != nil {
		res.WALBytes = ws.Bytes
		res.WALRecords = ws.Records
	}
	srv.Close()
	return res
}

// walChildEnv, when set, turns a benchserve invocation into the WAL crash
// drill's disposable server process: create (or recover) a WAL-backed
// buffered server in that directory, announce the listen URL and starting
// round on stdout, and serve until killed.
const walChildEnv = "BENCHSERVE_WAL_CHILD_DIR"

const (
	walSmokeParams = 4096
	walSmokeK      = 4
)

func runWALChild(dir string) {
	var srv *fldist.Server
	if fldist.WALExists(dir) {
		s, err := fldist.RecoverServer(dir)
		if err != nil {
			log.Fatalf("benchserve: wal child recover: %v", err)
		}
		srv = s
	} else {
		srv = fldist.NewServer(gridInit(walSmokeParams), nil, 1,
			fldist.WithBufferedAggregation(walSmokeK, walSmokeK), fldist.WithWAL(dir))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WALCHILD http://%s %d\n", ln.Addr(), srv.Round())
	log.Fatal(http.Serve(ln, srv.Handler()))
}

// spawnWALChild re-execs this binary as a WAL child on dir and returns the
// process and the URL/round it announced.
func spawnWALChild(dir string) (*exec.Cmd, string, int) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), walChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		log.Fatalf("benchserve: wal child died before announcing: %v", sc.Err())
	}
	var url string
	var round int
	if _, err := fmt.Sscanf(sc.Text(), "WALCHILD %s %d", &url, &round); err != nil {
		log.Fatalf("benchserve: wal child announced %q: %v", sc.Text(), err)
	}
	return cmd, url, round
}

// runSmokeWAL is the ~2s CI crash drill: a WAL-backed server in a child
// process is fed a deterministic serial fleet, SIGKILLed mid-round (with
// admitted-but-uncommitted updates in its buffer), restarted to recover and
// federate further, killed again — and the final in-process recovery must
// land bit-identically on the model the last incarnation served.
func runSmokeWAL() {
	start := time.Now()
	dir, err := os.MkdirTemp("", "benchserve-wal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	hc := http.DefaultClient

	id := 0
	pushN := func(url string, n int) {
		for i := 0; i < n; i++ {
			blob, err := pullRawGob(hc, url)
			if err != nil {
				log.Fatalf("benchserve: smoke-wal pull: %v", err)
			}
			delta := gridClientDelta(walSmokeParams, id)
			params := make([]float64, walSmokeParams)
			for j := range params {
				params[j] = blob.Params[j] + delta[j]
			}
			if err := pushRawGob(hc, url, fldist.Update{
				ClientID: id, Round: blob.Round, Weight: 1, Params: params,
			}); err != nil {
				log.Fatalf("benchserve: smoke-wal push %d: %v", id, err)
			}
			id++
		}
	}

	// Incarnation 1: two committed rounds plus two admissions the process
	// never gets to fold — then kill -9, mid-round by construction.
	cmd, url, round := spawnWALChild(dir)
	if round != 0 {
		log.Fatalf("benchserve: smoke-wal FAIL: fresh child started at round %d", round)
	}
	pushN(url, 2*walSmokeK+2)
	if err := cmd.Process.Kill(); err != nil {
		log.Fatal(err)
	}
	_ = cmd.Wait()

	// Incarnation 2: recovery must resume at round 2 with the two orphaned
	// admissions back in its buffer — two more pushes complete that round's
	// commit, one more full buffer lands round 4.
	cmd, url, round = spawnWALChild(dir)
	if round != 2 {
		log.Fatalf("benchserve: smoke-wal FAIL: recovered child at round %d, want 2", round)
	}
	pushN(url, 2*walSmokeK-2)
	blob, err := pullRawGob(hc, url)
	if err != nil {
		log.Fatal(err)
	}
	if blob.Round != 4 {
		log.Fatalf("benchserve: smoke-wal FAIL: served round %d after the full script, want 4", blob.Round)
	}
	if err := cmd.Process.Kill(); err != nil {
		log.Fatal(err)
	}
	_ = cmd.Wait()

	// Final recovery, in-process: bit-identical to the model the dead server
	// was serving.
	rec, err := fldist.RecoverServer(dir)
	if err != nil {
		log.Fatalf("benchserve: smoke-wal FAIL: final recovery: %v", err)
	}
	defer rec.Close()
	if rec.Round() != blob.Round {
		log.Fatalf("benchserve: smoke-wal FAIL: recovered round %d, want %d", rec.Round(), blob.Round)
	}
	p, _ := rec.Snapshot()
	for i := range blob.Params {
		if p[i] != blob.Params[i] {
			log.Fatalf("benchserve: smoke-wal FAIL: params[%d] recovered %v != served %v (not bit-identical)",
				i, p[i], blob.Params[i])
		}
	}
	log.Printf("smoke-wal PASS: survived 2 SIGKILLs mid-round; recovery resumed at round 2 with 2 buffered updates replayed and the final model is bit-identical to the last served snapshot (%d params, %.1fs)",
		walSmokeParams, time.Since(start).Seconds())
}
