package main

// The hierarchical phase and the smoke-edge check: edge aggregators from
// internal/fldist placed between the synthetic fleet and the root, so
// BENCH_serve.json records what the tier buys (root-side push admissions
// reduced by the cohort fan-in at equal client count) and CI pins that a
// 2-tier topology over real HTTP commits bit-identically to the flat fleet.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fedprophet/internal/fldist"
)

// hierResult is one hierarchical-phase row: the same fleet size driven flat
// against the root or through edge aggregators. RootAdmissions counts pushes
// the root admitted (for the flat fleet that is every client push; for the
// tiered fleet only the combined tier deltas); RootPushReduction is
// ClientPushes/RootAdmissions on the tiered row — the fan-out the root was
// spared, ≥ the cohort fan-in by construction since each flush folds at
// least fanIn cohort updates.
type hierResult struct {
	Clients           int     `json:"clients"`
	Edges             int     `json:"edges,omitempty"`
	FanIn             int     `json:"fan_in,omitempty"`
	Mode              string  `json:"mode"` // "flat" or "tiered"
	Seconds           float64 `json:"seconds"`
	ClientPushes      int64   `json:"client_pushes"`
	RootAdmissions    int64   `json:"root_admissions"`
	Rounds            int     `json:"rounds"`
	UpdatesPerSec     float64 `json:"updates_per_sec"`
	RootPushReduction float64 `json:"root_push_reduction,omitempty"`
}

// runHierPhase drives totalClients synthetic async clients for about d
// wall-clock: straight at a buffered root when nEdges is 0, otherwise split
// into nEdges equal cohorts, each behind an edge aggregator that pre-folds
// and pushes upstream. Clients and wire protocol are identical in both
// shapes; only the topology differs.
func runHierPhase(nEdges, totalClients int, d time.Duration,
	initParams []float64, bits, chunk, shards int) hierResult {
	fanIn := 0
	rootK := totalClients
	if nEdges > 0 {
		if totalClients%nEdges != 0 {
			log.Fatalf("benchserve: %d clients do not split across %d edges", totalClients, nEdges)
		}
		fanIn = totalClients / nEdges
		rootK = nEdges
	}
	root := fldist.NewServer(initParams, nil, 1,
		fldist.WithShards(shards), fldist.WithBufferedAggregation(rootK, 8))
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rootHS := &http.Server{Handler: root.Handler()}
	go func() { _ = rootHS.Serve(rootLn) }()
	rootURL := "http://" + rootLn.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()

	// Each client's target: the root, or its cohort's edge.
	targets := make([]string, totalClients)
	var edgeHSs []*http.Server
	if nEdges == 0 {
		for i := range targets {
			targets[i] = rootURL
		}
	} else {
		for i := 0; i < nEdges; i++ {
			e := fldist.NewEdge(rootURL,
				fldist.WithEdgeClientID(1<<20+i*fldist.EdgeIDSpan),
				fldist.WithEdgeFlush(fanIn, 0),
				fldist.WithEdgeWindow(8),
				fldist.WithEdgeShards(shards))
			if err := e.Start(ctx); err != nil {
				log.Fatalf("benchserve: edge %d start: %v", i, err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			hs := &http.Server{Handler: e.Handler()}
			go func() { _ = hs.Serve(ln) }()
			edgeHSs = append(edgeHSs, hs)
			url := "http://" + ln.Addr().String()
			for j := 0; j < fanIn; j++ {
				targets[i*fanIn+j] = url
			}
		}
	}

	transport := &http.Transport{MaxIdleConns: totalClients * 2, MaxIdleConnsPerHost: totalClients * 2}
	hc := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	var pushes atomic.Int64
	start := time.Now()
	for id := 0; id < totalClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runClient(ctx, hc, targets[id], id, initParams, bits, chunk, &pushes)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, hs := range edgeHSs {
		_ = hs.Close()
	}
	_ = rootHS.Close()

	st := root.Stats()
	res := hierResult{
		Clients:        totalClients,
		Edges:          nEdges,
		FanIn:          fanIn,
		Mode:           "flat",
		Seconds:        elapsed.Seconds(),
		ClientPushes:   pushes.Load(),
		RootAdmissions: st.UpdatesRaw + st.UpdatesCompressed,
		Rounds:         root.RoundsCompleted(),
	}
	res.UpdatesPerSec = float64(res.ClientPushes) / elapsed.Seconds()
	if nEdges > 0 {
		res.Mode = "tiered"
		if res.RootAdmissions > 0 {
			res.RootPushReduction = float64(res.ClientPushes) / float64(res.RootAdmissions)
		}
	}
	return res
}

// ---- smoke-edge ------------------------------------------------------------

// gridInit builds a deterministic initial model on the 2⁻¹² lattice and
// gridClientDelta a per-client delta on the 2⁻¹⁰ lattice: with unit weights
// and power-of-two cohort sizes every fold operation on both topologies is
// exact in float64, so flat and tiered final models must match bit-for-bit
// (the same fixture internal/fldist's TestTwoTierCommitBitIdenticalToFlatFleet
// pins in-process; this one crosses real HTTP and real processes' worth of
// goroutines).
func gridInit(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64((i*2654435761)%4096-2048) / 4096
	}
	return v
}

func gridClientDelta(n, id int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((id+1)*(i%13-6)) / 1024
	}
	return out
}

func pullRawGob(hc *http.Client, url string) (*fldist.ModelBlob, error) {
	resp, err := hc.Get(url + "/model")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("pull: %s", resp.Status)
	}
	var blob fldist.ModelBlob
	if err := gob.NewDecoder(resp.Body).Decode(&blob); err != nil {
		return nil, err
	}
	return &blob, nil
}

func pushRawGob(hc *http.Client, url string, u fldist.Update) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		return err
	}
	resp, err := hc.Post(url+"/update", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("push: %s", resp.Status)
	}
	return nil
}

// gridCohort pushes one exact update per client id at the target's current
// round, weight 1.
func gridCohort(hc *http.Client, url string, nParams int, ids []int) error {
	for _, id := range ids {
		blob, err := pullRawGob(hc, url)
		if err != nil {
			return fmt.Errorf("client %d: %w", id, err)
		}
		delta := gridClientDelta(nParams, id)
		params := make([]float64, nParams)
		for i := range params {
			params[i] = blob.Params[i] + delta[i]
		}
		if err := pushRawGob(hc, url, fldist.Update{
			ClientID: id, Round: blob.Round, Weight: 1, Params: params,
		}); err != nil {
			return fmt.Errorf("client %d: %w", id, err)
		}
	}
	return nil
}

func awaitServerRound(s *fldist.Server, want int) {
	deadline := time.Now().Add(10 * time.Second)
	for s.Round() < want {
		if time.Now().After(deadline) {
			log.Fatalf("benchserve: server stuck at round %d waiting for %d", s.Round(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// runSmokeEdge is the ~2s CI topology check: 2 edges × 4 clients vs the same
// 8 clients flat, over real HTTP, asserting the final models are
// bit-identical and the root-side admission reduction equals the fan-in.
func runSmokeEdge() {
	const nParams = 4096
	const nEdges, fanIn = 2, 4
	init := gridInit(nParams)
	hc := http.DefaultClient
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}

	// Flat fleet: one synchronous round over all 8 clients.
	flat := fldist.NewServer(init, nil, len(ids))
	flatLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	flatHS := &http.Server{Handler: flat.Handler()}
	go func() { _ = flatHS.Serve(flatLn) }()
	if err := gridCohort(hc, "http://"+flatLn.Addr().String(), nParams, ids); err != nil {
		log.Fatalf("benchserve: smoke-edge flat fleet: %v", err)
	}
	awaitServerRound(flat, 1)
	_ = flatHS.Close()
	flatP, _ := flat.Snapshot()

	// Tiered: the same 8 clients split into 2 cohorts of 4, each behind an
	// edge that pre-folds and pushes one combined update to the root.
	root := fldist.NewServer(init, nil, nEdges)
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rootHS := &http.Server{Handler: root.Handler()}
	go func() { _ = rootHS.Serve(rootLn) }()
	rootURL := "http://" + rootLn.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < nEdges; i++ {
		e := fldist.NewEdge(rootURL,
			fldist.WithEdgeClientID(1<<20+i*fldist.EdgeIDSpan),
			fldist.WithEdgeFlush(fanIn, 0))
		if err := e.Start(ctx); err != nil {
			log.Fatalf("benchserve: smoke-edge edge %d: %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: e.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		if err := gridCohort(hc, "http://"+ln.Addr().String(), nParams, ids[i*fanIn:(i+1)*fanIn]); err != nil {
			log.Fatalf("benchserve: smoke-edge cohort %d: %v", i, err)
		}
	}
	awaitServerRound(root, 1)
	tierP, _ := root.Snapshot()

	for i := range flatP {
		if tierP[i] != flatP[i] {
			log.Fatalf("benchserve: smoke-edge FAIL: params[%d] tiered %v != flat %v (not bit-identical)",
				i, tierP[i], flatP[i])
		}
	}
	st := root.Stats()
	admissions := st.UpdatesRaw + st.UpdatesCompressed
	if admissions != nEdges {
		log.Fatalf("benchserve: smoke-edge FAIL: root admitted %d pushes, want %d", admissions, nEdges)
	}
	_ = rootHS.Close()
	log.Printf("smoke-edge PASS: %d clients via %d edges committed bit-identical to the flat fleet; root admissions %d→%d (%dx reduction)",
		len(ids), nEdges, len(ids), admissions, len(ids)/nEdges)
}
