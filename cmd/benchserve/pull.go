package main

// The pull-heavy phase: N concurrent pullers (mixed codec variants) hammer
// GET /model on a ~1M-parameter synthetic model while a cadenced
// quorum-of-one pusher advances rounds, so the served cache is invalidated
// and rebuilt live — the read-fan-out-under-update regime the
// parameter-server literature calls out as the canonical bottleneck.
//
// Like the push-alloc measurement, the phase drives the HTTP handlers
// directly, and the pull sink counts the response bytes without copying
// them: this container has one hardware thread (see num_cpu in the run
// metadata), and with either the kernel's loopback TCP in the loop or a
// client-side body copy per pull, 256 pullers × ~300KB bodies saturate the
// memory system and both servers measure within ~15% of each other no
// matter how they serve — the body transfer masks exactly the work this
// phase exists to compare. Both servers hand the sink the same finished
// cached slice, so what remains is each server's own per-pull serve path:
// parse the codec, locate the served body for the round, hand it off. That
// is the path the refactor rewrote — the baseline takes the global mutex on
// every pull (and holds it across every cache build, model-sized
// reconstruct, and round poll), while the sharded server resolves a pull
// with an atomic pointer load and builds each variant single-flight outside
// any lock a pull needs.
//
// Rounds are clocked, not free-running: 256 spinning pullers against a
// fair scheduler would starve a pusher of the ~tens of milliseconds of CPU
// a million-parameter decode needs (observed: one round per 2.5s phase), so
// the clocker briefly gates the pullers while its push is in flight. The
// gate is identical for both servers — a symmetric traffic trough between
// rounds — and the measured pulls happen entirely outside it.

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedprophet/internal/fldist"
)

// pullResult is one pull-heavy phase against one server.
type pullResult struct {
	Clients           int     `json:"clients"`
	Server            string  `json:"server"` // "single-mutex" or "sharded"
	Params            int     `json:"params"`
	CodecVariants     int     `json:"codec_variants"`
	Seconds           float64 `json:"seconds"`
	GatedSeconds      float64 `json:"gated_seconds"` // quiesce windows while the clocker's push was in flight
	Pulls             int64   `json:"pulls"`
	Pushes            int64   `json:"pushes"`
	Rounds            int     `json:"rounds"` // cache invalidations the phase survived
	PullsPerSec       float64 `json:"pulls_per_sec"`
	PullP50MS         float64 `json:"pull_p50_ms"`
	PullP99MS         float64 `json:"pull_p99_ms"`
	BytesPulled       int64   `json:"bytes_pulled"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// pullVariants is the codec mix the pullers cycle through — four live
// variants per round keeps several cache builds in flight at once, the
// high-fan-out shape the serve refactor targets. The clocker pushes at
// pullVariants[0], so the total variant count stays within the server's
// per-round cap. (The baseline serves compressed pulls only, so the mix is
// all-compressed for both servers.)
var pullVariants = []codecParams{
	{bits: 2, chunk: 256},
	{bits: 3, chunk: 256},
	{bits: 2, chunk: 512},
	{bits: 4, chunk: 512},
}

// sinkWriter is the pull fleet's ResponseWriter: headers and status are
// retained for inspection, body bytes are counted but not copied (see the
// file comment — on one hardware thread a per-pull body copy measures the
// memory system, not the server), and small bodies (round polls) are
// captured. One per client goroutine, reset between requests.
type sinkWriter struct {
	h    http.Header
	code int
	n    int64
	body []byte // small-response capture (round polls)
}

func (w *sinkWriter) Header() http.Header { return w.h }

func (w *sinkWriter) Write(p []byte) (int, error) {
	if len(p) <= 64 {
		w.body = append(w.body, p...)
	}
	w.n += int64(len(p))
	return len(p), nil
}

func (w *sinkWriter) WriteHeader(code int) { w.code = code }

func (w *sinkWriter) reset() {
	clear(w.h)
	w.code = 0
	w.n = 0
	w.body = w.body[:0]
}

// status returns the effective HTTP status (an unset code is an implicit
// 200, as in net/http).
func (w *sinkWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func newSinkWriter() *sinkWriter {
	return &sinkWriter{h: http.Header{}}
}

// pollRoundDirect reads GET /round straight off the handler.
func pollRoundDirect(h http.Handler, w *sinkWriter) (int, bool) {
	req, err := http.NewRequest(http.MethodGet, "http://bench/round", nil)
	if err != nil {
		return 0, false
	}
	w.reset()
	h.ServeHTTP(w, req)
	if w.status() != http.StatusOK {
		return 0, false
	}
	r, err := strconv.Atoi(strings.TrimSpace(string(w.body)))
	if err != nil {
		return 0, false
	}
	return r, true
}

// runPullClocker is the phase's round clock: a quorum-of-one pusher whose
// every update completes a round, invalidating the served cache. It runs a
// fixed number of rounds — the same number against both servers, so neither
// side's result depends on how many invalidation storms it happened to
// absorb — with a fixed open measurement window after each push, and cancels
// the phase when the last window closes. The gate quiesces the pullers
// while a push is in flight.
func runPullClocker(ctx context.Context, cancel context.CancelFunc, h http.Handler,
	initParams []float64, bits, chunk, nRounds int, window time.Duration,
	gate *atomic.Bool, pushes, gatedNanos *atomic.Int64) {
	defer cancel()
	body := makeDeltaBody(0, initParams, bits, chunk)
	reader := newNopReader(body)
	w := newSinkWriter()
	req, err := http.NewRequest(http.MethodPost, "http://bench/update", nil)
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", contentTypeDelta)
	req.ContentLength = int64(len(body))

	// warm pulls one body per codec variant so every variant's cache build
	// for the new round runs here, inside the gate, at full CPU. Left to the
	// puller fleet, the storm of rebuilds is scheduler-hostile on a small
	// machine: pullers whose variant finished first spin at full rate and
	// starve the remaining builds (the baseline is immune only because its
	// global mutex parks every puller during a build — the very behavior
	// under test), and the measured window turns into a lottery over build
	// completion order. Warming inside the gate makes the open window
	// steady-state fan-out serving on both servers; the cost of pushes and
	// rebuilds is reported as gated_seconds, not hidden.
	warmReqs := make([]*http.Request, len(pullVariants))
	for i, c := range pullVariants {
		wr, err := http.NewRequest(http.MethodGet, "http://bench/model", nil)
		if err != nil {
			return
		}
		wr.Header.Set(codecHeaderName, fmt.Sprintf("fpq1;bits=%d;chunk=%d", c.bits, c.chunk))
		warmReqs[i] = wr
	}
	warm := func() {
		for _, wr := range warmReqs {
			w.reset()
			h.ServeHTTP(w, wr)
			if w.status() != http.StatusOK {
				log.Fatalf("benchserve: pull-phase warm pull: status %d", w.status())
			}
		}
	}

	// nRounds pushes; one extra leading iteration (r == 0) warms the initial
	// round's cold cache, so every open window — including the first — sees
	// fully built state.
	for r := 0; r <= nRounds && ctx.Err() == nil; r++ {
		g0 := time.Now()
		gate.Store(true)
		if r > 0 {
			round, ok := pollRoundDirect(h, w)
			if !ok {
				gate.Store(false)
				gatedNanos.Add(int64(time.Since(g0)))
				return
			}
			binary.LittleEndian.PutUint32(body[9:13], uint32(round))
			reader.off = 0
			req.Body = reader
			w.reset()
			h.ServeHTTP(w, req)
			switch w.status() {
			case http.StatusOK:
				if w.h.Get("X-Fldist-Duplicate") == "" {
					pushes.Add(1)
				}
			case http.StatusConflict:
				// Raced a concurrent commit; next poll re-bases.
			default:
				log.Fatalf("benchserve: pull-phase clocker: status %d", w.status())
			}
		}
		warm()
		gate.Store(false)
		gatedNanos.Add(int64(time.Since(g0)))
		if !sleepCtx(ctx, window) {
			return
		}
	}
}

// runPullPhase drives n concurrent pullers plus the fixed-round clocker
// against a server's handler: nRounds cache invalidations with a window-long
// open measurement period after each (d is only the runaway safety cap).
func runPullPhase(h http.Handler, name string, n, nRounds int, window, d time.Duration,
	initParams []float64, rounds func() int) pullResult {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()

	var pulls, bytesPulled, pushes, gatedNanos atomic.Int64
	var gate atomic.Bool
	gate.Store(true) // the clocker's round-0 warm pulls open it
	latencies := make([][]time.Duration, n)
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := pullVariants[0]
		runPullClocker(ctx, cancel, h, initParams, c.bits, c.chunk, nRounds, window, &gate, &pushes, &gatedNanos)
	}()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := pullVariants[id%len(pullVariants)]
			codec := fmt.Sprintf("fpq1;bits=%d;chunk=%d", c.bits, c.chunk)
			req, err := http.NewRequest(http.MethodGet, "http://bench/model", nil)
			if err != nil {
				return
			}
			req.Header.Set(codecHeaderName, codec)
			w := newSinkWriter()
			for i := 0; ctx.Err() == nil; i++ {
				for gate.Load() {
					// A coarse tick: 256 parked pullers re-checking every
					// millisecond would steal a meaningful slice of the one
					// hardware thread from the very push being waited on.
					if !sleepCtx(ctx, 5*time.Millisecond) {
						return
					}
				}
				// Sample latency on every 16th pull: at sub-microsecond
				// serve times the clock reads are themselves a visible tax,
				// and they'd be charged to both servers alike, blurring the
				// comparison. (The servers' own /stats percentiles cover
				// every pull.)
				timed := i&15 == 0
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				w.reset()
				h.ServeHTTP(w, req)
				if w.status() != http.StatusOK {
					log.Fatalf("benchserve: pull phase client %d: status %d", id, w.status())
				}
				pulls.Add(1)
				bytesPulled.Add(w.n)
				if timed {
					latencies[id] = append(latencies[id], time.Since(t0))
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(q*float64(len(all)-1))]) / float64(time.Millisecond)
	}
	total := pulls.Load()
	// Throughput is over the open (ungated) window: the gate is a bench
	// artifact quiescing pullers while a push is in flight, and the time a
	// server spends inside it varies with round-count luck — charging it to
	// pulls/s would measure that luck, not the serve path. The gated time is
	// recorded alongside so a reader can reconstruct the raw rate.
	open := elapsed - time.Duration(gatedNanos.Load())
	if open <= 0 {
		open = elapsed
	}
	return pullResult{
		Clients:       n,
		Server:        name,
		Params:        len(initParams),
		CodecVariants: len(pullVariants),
		Seconds:       elapsed.Seconds(),
		GatedSeconds:  elapsed.Seconds() - open.Seconds(),
		Pulls:         total,
		Pushes:        pushes.Load(),
		Rounds:        rounds(),
		PullsPerSec:   float64(total) / open.Seconds(),
		PullP50MS:     pct(0.50),
		PullP99MS:     pct(0.99),
		BytesPulled:   bytesPulled.Load(),
	}
}

// runPullBench runs the pull-heavy phase against both servers and returns
// the pair with the speedup attributed to the sharded one.
func runPullBench(n, nParams, nRounds int, window time.Duration, seed int64, shards int) []pullResult {
	rng := rand.New(rand.NewSource(seed))
	initParams := make([]float64, nParams)
	for i := range initParams {
		initParams[i] = rng.NormFloat64()
	}
	// Runaway cap, not the measurement clock: generous slack over
	// nRounds × (window + push/build time) so a healthy phase always ends by
	// round count.
	cap := time.Duration(nRounds+1)*(window+2*time.Second) + 5*time.Second

	bs := newBaselineServer(initParams, nil, 1)
	base := runPullPhase(bs.handler(), "single-mutex", n, nRounds, window, cap, initParams, func() int {
		_, rc, _ := bs.stats()
		return rc
	})
	srv := fldist.NewServer(initParams, nil, 1, fldist.WithShards(shards))
	shard := runPullPhase(srv.Handler(), "sharded", n, nRounds, window, cap, initParams, srv.RoundsCompleted)
	if base.PullsPerSec > 0 {
		shard.SpeedupVsBaseline = shard.PullsPerSec / base.PullsPerSec
	}
	log.Printf("pull N=%-3d params=%d: single-mutex %7.0f pulls/s (p50 %.2fms p99 %.2fms, %d rounds) | sharded %7.0f pulls/s (p50 %.2fms p99 %.2fms, %d rounds) | %.2fx",
		n, nParams, base.PullsPerSec, base.PullP50MS, base.PullP99MS, base.Rounds,
		shard.PullsPerSec, shard.PullP50MS, shard.PullP99MS, shard.Rounds, shard.SpeedupVsBaseline)
	return []pullResult{base, shard}
}

// runSmokePull is the ~2s CI smoke behind -smoke-pull: a scaled-down
// high-fan-out pull phase against both servers, verifying the serve path
// survives cache churn at fan-out (in aggregate at least one pull per
// puller, and bytes actually flowed) without asserting on throughput — CI
// machines are not benchmarking machines.
func runSmokePull() {
	const (
		n       = 64
		nParams = 200_000
		nRounds = 4
		window  = 60 * time.Millisecond
	)
	res := runPullBench(n, nParams, nRounds, window, 1, 0)
	for _, r := range res {
		if r.Pulls < int64(n) {
			log.Fatalf("benchserve: -smoke-pull: %s server completed %d pulls, want ≥ %d (one per client)",
				r.Server, r.Pulls, n)
		}
		if r.BytesPulled <= 0 {
			log.Fatalf("benchserve: -smoke-pull: %s server served no bytes", r.Server)
		}
	}
	log.Printf("smoke-pull OK: %d pullers × %d params, single-mutex %d pulls, sharded %d pulls",
		n, nParams, res[0].Pulls, res[1].Pulls)
}
