// Command experiments regenerates the tables and figures of the FedProphet
// paper (MLSys 2025) on the synthetic substrate of this reproduction.
//
// Usage:
//
//	experiments [flags] <artifact>
//
// where artifact is one of:
//
//	table1 table2 table3 table4 fig2 fig6 fig7 fig8 fig9 fig10
//	partition devices all
//
// Flags select the workload (-workload cifar|caltech), the systematic
// heterogeneity (-hetero balanced|unbalanced), the run scale
// (-scale quick|full) and the seed (-seed).
package main

import (
	"flag"
	"fmt"
	"os"

	"fedprophet/internal/device"
	"fedprophet/internal/exp"
)

func main() {
	var (
		workload = flag.String("workload", "cifar", "workload: cifar or caltech")
		hetero   = flag.String("hetero", "balanced", "systematic heterogeneity: balanced or unbalanced")
		scale    = flag.String("scale", "quick", "run scale: quick, trimmed or full")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table1|table2|table3|table4|fig2|fig6|fig7|fig8|fig9|fig10|partition|devices|all>")
		os.Exit(2)
	}

	s := exp.QuickScale()
	switch *scale {
	case "full":
		s = exp.FullScale()
	case "trimmed":
		s = exp.TrimmedScale()
	}
	var w exp.Workload
	switch *workload {
	case "cifar":
		w = exp.CIFAR10S()
	case "caltech":
		w = exp.Caltech256S(*scale != "full")
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	h := device.Balanced
	if *hetero == "unbalanced" {
		h = device.Unbalanced
	}

	run := func(artifact string) {
		switch artifact {
		case "table1":
			fmt.Print(exp.Table1(s, *seed))
		case "table2", "fig7", "setting":
			results := exp.RunSetting(w, s, h, *seed)
			switch artifact {
			case "table2":
				fmt.Print(exp.Table2(w, h, results))
			case "fig7":
				fmt.Print(exp.Figure7(w, h, results))
			default:
				fmt.Print(exp.Table2(w, h, results))
				fmt.Print(exp.Figure7(w, h, results))
			}
		case "table3":
			fmt.Print(exp.Table3(w, s, h, *seed))
		case "table4":
			fmt.Print(exp.Table4(w, s, h, *seed))
		case "fig2":
			fmt.Print(exp.Figure2(w, s, *seed))
		case "fig6":
			fmt.Print(exp.Figure6(w, s, *seed))
		case "fig8":
			fmt.Print(exp.Figure8(w, s, []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3}, *seed))
		case "fig9":
			fmt.Print(exp.Figure9(w, s, []float64{0.2, 0.4, 0.6, 0.8, 1.0}, *seed))
		case "fig10":
			fmt.Print(exp.Figure10(w, s, *seed))
		case "partition":
			fmt.Print(exp.PartitionTable(w, s, *seed))
		case "devices":
			for _, r := range exp.DeviceTable() {
				fmt.Print(r)
			}
		case "all":
			fmt.Print(exp.Table1(s, *seed))
			fmt.Print(exp.Figure2(w, s, *seed))
			fmt.Print(exp.Figure6(w, s, *seed))
			results := exp.RunSetting(w, s, h, *seed)
			fmt.Print(exp.Table2(w, h, results))
			fmt.Print(exp.Figure7(w, h, results))
			fmt.Print(exp.Figure8(w, s, []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3}, *seed))
			fmt.Print(exp.Figure9(w, s, []float64{0.2, 0.4, 0.6, 0.8, 1.0}, *seed))
			fmt.Print(exp.Table3(w, s, h, *seed))
			fmt.Print(exp.Figure10(w, s, *seed))
			fmt.Print(exp.Table4(w, s, h, *seed))
			fmt.Print(exp.PartitionTable(w, s, *seed))
			for _, r := range exp.DeviceTable() {
				fmt.Print(r)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", artifact)
			os.Exit(2)
		}
	}
	run(flag.Arg(0))
}
