// Command fldist runs the distributed federated-training transport: one
// process as the parameter server, any number of processes as clients.
// It federates standard or adversarial training of a CNN3 model on the
// synthetic CIFAR10-S workload across real HTTP.
//
// Server:
//
//	fldist -serve -addr :8080 -quorum 3
//
// Clients (each simulating one participant's shard):
//
//	fldist -connect http://localhost:8080 -client 0 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 1 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 2 -clients 3 -rounds 5
//
// Passing -bits (2..8) on a client switches it to the compressed delta wire
// protocol of docs/WIRE.md: quantized pulls and error-fed quantized delta
// pushes, negotiated per client, with -chunk values per quantization scale.
// The server accepts compressed and raw clients in the same round and
// reports bytes-on-wire on GET /stats (and in its shutdown log line).
//
// The server aggregates under parameter-range sharding (-shards, default
// GOMAXPROCS; the model is bit-identical at any count) and exposes
// per-update admit-latency percentiles on /stats. -pprof serves
// net/http/pprof for live profiling of either role.
//
// By default the server is a synchronous quorum aggregator. Passing
// -buffer K switches it to FedBuff-style buffered bounded-staleness
// aggregation: updates up to -staleness rounds behind the current round are
// admitted (down-weighted by 1/(1+staleness)) instead of rejected, and the
// model commits every K admitted updates — no round barrier, so a
// straggler's training pass is never thrown away while it stays inside the
// window. Run the clients with -async to pipeline pull→train→push against
// such a server. The wire protocol is identical in both modes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "run the parameter server")
		addr     = flag.String("addr", ":8080", "server listen address")
		quorum   = flag.Int("quorum", 2, "updates per aggregation round")
		connect  = flag.String("connect", "", "server URL for client mode")
		clientID = flag.Int("client", 0, "this client's index")
		clients  = flag.Int("clients", 2, "total number of clients (data partition)")
		rounds   = flag.Int("rounds", 5, "rounds to participate in")
		pgd      = flag.Int("pgd", 3, "PGD steps for adversarial training (0 = standard)")
		seed     = flag.Int64("seed", 1, "random seed (must match across processes)")
		bits     = flag.Int("bits", 0, "compressed delta wire protocol bit width, 2..8 (0 = raw gob)")
		chunk    = flag.Int("chunk", 0, "values per quantization scale (0 = default 256)")
		shards   = flag.Int("shards", 0, "server aggregation shards (0 = GOMAXPROCS; result is identical at any count)")
		buffer   = flag.Int("buffer", 0, "buffered bounded-staleness aggregation: commit every K admitted updates (0 = synchronous quorum)")
		stale    = flag.Int("staleness", 4, "buffered mode: admit updates up to this many rounds behind, down-weighted 1/(1+staleness)")
		async    = flag.Bool("async", false, "client mode: pipeline pull→train→push for a buffered server (no round barrier)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for live profiling")
	)
	flag.Parse()

	if *pprof != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank
			// import; this listener serves only them.
			log.Printf("pprof on %s", *pprof)
			log.Println(http.ListenAndServe(*pprof, nil))
		}()
	}

	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(*seed)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *serve:
		m := build()
		opts := []fldist.ServerOption{fldist.WithShards(*shards)}
		mode := fmt.Sprintf("quorum %d", *quorum)
		if *buffer > 0 {
			opts = append(opts, fldist.WithBufferedAggregation(*buffer, *stale))
			mode = fmt.Sprintf("buffered K=%d staleness≤%d", *buffer, *stale)
		}
		srv := fldist.NewServer(nn.ExportParams(m), nn.ExportBNStats(m), *quorum, opts...)
		log.Printf("parameter server on %s (%s, model %s, %d params, %d shards)",
			*addr, mode, m.Label, nn.NumParams(m), srv.Shards())
		if err := srv.ListenAndServe(ctx, *addr); err != nil {
			log.Fatal(err)
		}
		st := srv.Stats()
		log.Printf("parameter server shut down after %d completed rounds", st.RoundsCompleted)
		if b := st.Buffered; b != nil {
			log.Printf("staleness: admitted histogram %v, %d rejected outside window ≤%d",
				b.StalenessHist, b.StaleRejected, b.MaxStaleness)
		}
		log.Printf("wire traffic: in %d B raw + %d B compressed, out %d B raw + %d B compressed (%d raw / %d compressed updates)",
			st.BytesInRaw, st.BytesInCompressed, st.BytesOutRaw, st.BytesOutCompressed,
			st.UpdatesRaw, st.UpdatesCompressed)
		log.Printf("admit latency: p50 %.0fµs p99 %.0fµs over %d shards",
			st.AdmitP50Micros, st.AdmitP99Micros, st.Shards)

	case *connect != "":
		cfg := fl.DefaultConfig()
		cfg.LocalIters = 10
		cfg.Batch = 16
		train, _ := data.Generate(data.CIFAR10SConfig(60, 10, *seed))
		subs := data.PartitionNonIID(train, data.DefaultPartition(*clients, *seed))
		if *clientID < 0 || *clientID >= len(subs) {
			log.Fatalf("client index %d out of range [0,%d)", *clientID, len(subs))
		}
		c := &fldist.Client{
			ID:       *clientID,
			BaseURL:  *connect,
			HTTP:     &http.Client{Timeout: 30 * time.Second},
			Model:    build(),
			Subset:   subs[*clientID],
			Cfg:      cfg,
			Rng:      rand.New(rand.NewSource(*seed + int64(*clientID))),
			PGDSteps: *pgd,
			Async:    *async,
		}
		wire := "raw gob"
		if *bits != 0 {
			c.Compression = &fldist.Compression{Bits: *bits, Chunk: *chunk}
			wire = fmt.Sprintf("%d-bit error-fed deltas", *bits)
		}
		loop := "sync"
		if *async {
			loop = "async pipeline"
		}
		log.Printf("client %d: %d local samples, PGD-%d, %d rounds (%s), wire: %s",
			*clientID, subs[*clientID].Len(), *pgd, *rounds, loop, wire)
		if err := c.RunRounds(ctx, *rounds, 0.04); err != nil {
			log.Fatal(err)
		}
		log.Printf("client %d: done (%d stale retrains)", *clientID, c.StaleRetrains)

	default:
		fmt.Println("specify -serve or -connect <url>; see -h")
	}
}
