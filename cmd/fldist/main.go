// Command fldist runs the distributed federated-training transport: one
// process as the parameter server, any number of processes as clients.
// It federates standard or adversarial training of a CNN3 model on the
// synthetic CIFAR10-S workload across real HTTP.
//
// Server:
//
//	fldist -serve -addr :8080 -quorum 3
//
// Clients (each simulating one participant's shard):
//
//	fldist -connect http://localhost:8080 -client 0 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 1 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 2 -clients 3 -rounds 5
//
// Passing -bits (2..8) on a client switches it to the compressed delta wire
// protocol of docs/WIRE.md: quantized pulls and error-fed quantized delta
// pushes, negotiated per client, with -chunk values per quantization scale.
// The server accepts compressed and raw clients in the same round and
// reports bytes-on-wire on GET /stats (and in its shutdown log line).
//
// The server aggregates under parameter-range sharding (-shards, default
// GOMAXPROCS; the model is bit-identical at any count) and exposes
// per-update admit-latency percentiles on /stats. -pprof serves
// net/http/pprof for live profiling of either role.
//
// By default the server is a synchronous quorum aggregator. Passing
// -buffer K switches it to FedBuff-style buffered bounded-staleness
// aggregation: updates up to -staleness rounds behind the current round are
// admitted (down-weighted by 1/(1+staleness)) instead of rejected, and the
// model commits every K admitted updates — no round barrier, so a
// straggler's training pass is never thrown away while it stays inside the
// window. Run the clients with -async to pipeline pull→train→push against
// such a server. The wire protocol is identical in both modes.
//
// Passing -wal <dir> makes the server crash-safe: commits (and, in buffered
// mode, every admission between commits) are appended to a write-ahead log in
// <dir> before they take effect, and any later boot with the same -wal
// recovers at the last commit — kill -9 included; the aggregation flags are
// then read from the log, not the command line. -wal-handoff starts a
// successor that blocks until the incumbent exits (or dies) and takes over
// the federation at its last commit. On an edge, -wal durably parks the
// committed-but-unacknowledged upstream batch so a restarted edge re-pushes
// it under its original identity (the upstream drops the replay as a
// duplicate if it had already landed).
//
// Edge aggregator (the middle tier of a hierarchical topology):
//
//	fldist -edge -upstream http://root:8080 -addr :8081 -flush 8 -flush-age 500ms
//
// An edge serves its cohort of clients exactly like -serve does (same
// routes, same wire protocol, buffered admission) but pre-folds the
// cohort's admitted updates into one combined delta and pushes it to
// -upstream — the root, or another edge — as an ordinary wire update, so N
// clients cost the upstream one push per flush instead of N. -cohort takes
// a comma-separated list of names; with more than one, the process hosts
// one edge per cohort behind a multi-tenant registry (clients use
// http://edge:8081/<name>). SIGTERM drains: buffered cohort work is pushed
// upstream before the process exits.
//
// Each edge pushes upstream under a block of client IDs (-edge-id is the
// first block's base; successive cohorts take the following blocks). Edge
// processes sharing one upstream MUST use disjoint ID blocks — a collision
// makes the upstream's per-(round, client) dedup silently swallow another
// edge's flush — so the default is randomized per process; pass -edge-id
// explicitly for reproducible runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

func main() {
	var (
		serve     = flag.Bool("serve", false, "run the parameter server")
		addr      = flag.String("addr", ":8080", "server listen address")
		quorum    = flag.Int("quorum", 2, "updates per aggregation round")
		connect   = flag.String("connect", "", "server URL for client mode")
		clientID  = flag.Int("client", 0, "this client's index")
		clients   = flag.Int("clients", 2, "total number of clients (data partition)")
		rounds    = flag.Int("rounds", 5, "rounds to participate in")
		pgd       = flag.Int("pgd", 3, "PGD steps for adversarial training (0 = standard)")
		seed      = flag.Int64("seed", 1, "random seed (must match across processes)")
		bits      = flag.Int("bits", 0, "compressed delta wire protocol bit width, 2..8 (0 = raw gob)")
		chunk     = flag.Int("chunk", 0, "values per quantization scale (0 = default 256)")
		topk      = flag.Int("topk", 0, "client mode with -bits: send only the top-k coordinates of each error-fed delta uplink (0 = dense)")
		deltaPull = flag.Bool("delta-pull", false, "client mode with -bits: pull only the quantized global delta against the last held round (cold pull on the first round)")
		shards    = flag.Int("shards", 0, "server aggregation shards (0 = GOMAXPROCS; result is identical at any count)")
		buffer    = flag.Int("buffer", 0, "buffered bounded-staleness aggregation: commit every K admitted updates (0 = synchronous quorum)")
		stale     = flag.Int("staleness", 4, "buffered mode: admit updates up to this many rounds behind, down-weighted 1/(1+staleness)")
		async     = flag.Bool("async", false, "client mode: pipeline pull→train→push for a buffered server (no round barrier)")
		pprof     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for live profiling")
		edge      = flag.Bool("edge", false, "run an edge aggregator between a client cohort and -upstream")
		upstream  = flag.String("upstream", "", "edge mode: upstream server URL (root or another edge)")
		cohort    = flag.String("cohort", "", "edge mode: cohort name(s), comma-separated; >1 mounts a multi-tenant registry")
		flushK    = flag.Int("flush", 8, "edge mode: push upstream once this many cohort updates buffered")
		flushAge  = flag.Duration("flush-age", 500*time.Millisecond, "edge mode: push upstream once the oldest buffered update is this old (0 = depth/drain only)")
		edgeID    = flag.Int("edge-id", 0, "edge mode: base of this process's upstream client ID blocks, one block of fldist.EdgeIDSpan IDs per cohort; must be disjoint across edge processes sharing an upstream (0 = randomize)")
		walDir    = flag.String("wal", "", "server/edge mode: write-ahead log directory; a restart (or crash) resumes from it, so the first boot creates the log and every later boot recovers")
		handoff   = flag.Bool("wal-handoff", false, "server mode with -wal: wait for the process currently holding the WAL to exit, then take over at its last commit")
	)
	flag.Parse()

	if *pprof != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank
			// import; this listener serves only them.
			log.Printf("pprof on %s", *pprof)
			log.Println(http.ListenAndServe(*pprof, nil))
		}()
	}

	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(*seed)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *edge:
		if *upstream == "" {
			log.Fatal("edge mode needs -upstream <url>")
		}
		names := strings.Split(*cohort, ",")
		if *cohort == "" {
			names = []string{""}
		}
		idBase := *edgeID
		if idBase == 0 {
			// Randomized per process (off the auto-seeded global RNG, not
			// the deterministic -seed one): two standalone edge processes
			// sharing an upstream must not draw the same ID block, or the
			// upstream's per-(round, client) dedup would silently swallow
			// one edge's flushes. Span-aligned, clear of hand-assigned
			// client IDs.
			idBase = 1<<20 + fldist.EdgeIDSpan*(1+rand.Intn(1<<24))
		}
		mkEdge := func(name string, i int) *fldist.Edge {
			opts := []fldist.EdgeOption{
				fldist.WithEdgeName(name),
				fldist.WithEdgeClientID(idBase + i*fldist.EdgeIDSpan),
				fldist.WithEdgeFlush(*flushK, *flushAge),
				fldist.WithEdgeWindow(*stale),
				fldist.WithEdgeShards(*shards),
			}
			if *walDir != "" {
				// One parked-batch slot per cohort; a restarted process
				// re-pushes each cohort's unacknowledged batch before
				// serving (deduped upstream if it had landed).
				opts = append(opts, fldist.WithEdgeWAL(filepath.Join(*walDir, "cohort-"+name)))
			}
			return fldist.NewEdge(*upstream, opts...)
		}
		if len(names) == 1 {
			e := mkEdge(names[0], 0)
			log.Printf("edge aggregator on %s → %s (cohort %q, upstream IDs [%d,%d), flush K=%d age=%s, window ≤%d)",
				*addr, *upstream, names[0], e.ClientID(), e.ClientID()+fldist.EdgeIDSpan, *flushK, *flushAge, *stale)
			// Serve drains on SIGTERM: buffered cohort work is pushed
			// upstream before we exit.
			if err := e.ListenAndServe(ctx, *addr); err != nil {
				log.Fatal(err)
			}
			logEdgeStats(e)
			return
		}
		// Multi-tenant: one edge per cohort behind the registry mux, each
		// drained on shutdown.
		reg := fldist.NewRegistry()
		edges := make([]*fldist.Edge, 0, len(names))
		for i, name := range names {
			e := mkEdge(name, i)
			if err := e.Start(ctx); err != nil {
				log.Fatal(err)
			}
			if err := reg.Add(name, e.Handler()); err != nil {
				log.Fatal(err)
			}
			edges = append(edges, e)
		}
		log.Printf("edge registry on %s → %s (cohorts %v, upstream IDs from %d, flush K=%d age=%s)",
			*addr, *upstream, reg.Names(), idBase, *flushK, *flushAge)
		hs := &http.Server{Addr: *addr, Handler: reg.Handler()}
		go func() {
			<-ctx.Done()
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(shutCtx)
		}()
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
		for _, e := range edges {
			drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := e.Drain(drainCtx); err != nil {
				log.Printf("edge %q drain: %v", e.Name(), err)
			}
			cancel()
			logEdgeStats(e)
		}

	case *serve:
		m := build()
		var srv *fldist.Server
		var mode string
		switch {
		case *walDir != "" && *handoff:
			// Live handoff: block until the incumbent releases the log (the
			// kernel drops its flock on any exit, crash included), then
			// resume at its last commit.
			log.Printf("waiting for WAL handoff from %s", *walDir)
			s, err := fldist.Handoff(ctx, *walDir, fldist.WithShards(*shards))
			if err != nil {
				log.Fatal(err)
			}
			srv, mode = s, fmt.Sprintf("recovered via handoff at round %d", s.Round())
		case *walDir != "" && fldist.WALExists(*walDir):
			// Every boot after the first recovers: the aggregation mode and
			// thresholds come from the log, not the flags.
			s, err := fldist.RecoverServer(*walDir, fldist.WithShards(*shards))
			if err != nil {
				log.Fatal(err)
			}
			srv, mode = s, fmt.Sprintf("recovered from WAL at round %d", s.Round())
		default:
			opts := []fldist.ServerOption{fldist.WithShards(*shards)}
			mode = fmt.Sprintf("quorum %d", *quorum)
			if *buffer > 0 {
				opts = append(opts, fldist.WithBufferedAggregation(*buffer, *stale))
				mode = fmt.Sprintf("buffered K=%d staleness≤%d", *buffer, *stale)
			}
			if *walDir != "" {
				opts = append(opts, fldist.WithWAL(*walDir))
				mode += fmt.Sprintf(", WAL %s", *walDir)
			}
			srv = fldist.NewServer(nn.ExportParams(m), nn.ExportBNStats(m), *quorum, opts...)
		}
		log.Printf("parameter server on %s (%s, model %s, %d params, %d shards)",
			*addr, mode, m.Label, nn.NumParams(m), srv.Shards())
		if err := srv.ListenAndServe(ctx, *addr); err != nil {
			log.Fatal(err)
		}
		st := srv.Stats()
		log.Printf("parameter server shut down after %d completed rounds", st.RoundsCompleted)
		if b := st.Buffered; b != nil {
			log.Printf("staleness: admitted histogram %v, %d rejected outside window ≤%d",
				b.StalenessHist, b.StaleRejected, b.MaxStaleness)
		}
		log.Printf("wire traffic: in %d B raw + %d B compressed, out %d B raw + %d B compressed (%d raw / %d compressed updates)",
			st.BytesInRaw, st.BytesInCompressed, st.BytesOutRaw, st.BytesOutCompressed,
			st.UpdatesRaw, st.UpdatesCompressed)
		log.Printf("admit latency: p50 %.0fµs p99 %.0fµs over %d shards",
			st.AdmitP50Micros, st.AdmitP99Micros, st.Shards)
		log.Printf("pull latency: p50 %.0fµs p99 %.0fµs, %d served-model builds",
			st.PullP50Micros, st.PullP99Micros, st.ServedBuilds)

	case *connect != "":
		cfg := fl.DefaultConfig()
		cfg.LocalIters = 10
		cfg.Batch = 16
		train, _ := data.Generate(data.CIFAR10SConfig(60, 10, *seed))
		subs := data.PartitionNonIID(train, data.DefaultPartition(*clients, *seed))
		if *clientID < 0 || *clientID >= len(subs) {
			log.Fatalf("client index %d out of range [0,%d)", *clientID, len(subs))
		}
		c := &fldist.Client{
			ID:       *clientID,
			BaseURL:  *connect,
			HTTP:     &http.Client{Timeout: 30 * time.Second},
			Model:    build(),
			Subset:   subs[*clientID],
			Cfg:      cfg,
			Rng:      rand.New(rand.NewSource(*seed + int64(*clientID))),
			PGDSteps: *pgd,
			Async:    *async,
		}
		wire := "raw gob"
		if *bits != 0 {
			c.Compression = &fldist.Compression{Bits: *bits, Chunk: *chunk, TopK: *topk, Delta: *deltaPull}
			wire = fmt.Sprintf("%d-bit error-fed deltas", *bits)
			if *topk > 0 {
				wire += fmt.Sprintf(", top-%d sparse uplink", *topk)
			}
			if *deltaPull {
				wire += ", delta downlink"
			}
		} else if *topk > 0 || *deltaPull {
			log.Fatal("fldist: -topk and -delta-pull require -bits (they ride the compressed codec)")
		}
		loop := "sync"
		if *async {
			loop = "async pipeline"
		}
		log.Printf("client %d: %d local samples, PGD-%d, %d rounds (%s), wire: %s",
			*clientID, subs[*clientID].Len(), *pgd, *rounds, loop, wire)
		if err := c.RunRounds(ctx, *rounds, 0.04); err != nil {
			log.Fatal(err)
		}
		log.Printf("client %d: done (%d stale retrains)", *clientID, c.StaleRetrains)

	default:
		fmt.Println("specify -serve, -edge -upstream <url>, or -connect <url>; see -h")
	}
}

// logEdgeStats prints an edge's shutdown summary: the upstream tier section
// next to the cohort-facing admission numbers.
func logEdgeStats(e *fldist.Edge) {
	up := e.Stats().Upstream
	log.Printf("edge %q: %d upstream pushes (%d by depth, %d by age, %d by drain), %d rebased, %d retries, %d cohort pulls served from cache",
		e.Name(), up.Pushes, up.FlushK, up.FlushAge, up.FlushDrain, up.Rebased, up.Retries, up.CohortPulls)
}
