// Command fldist runs the distributed federated-training transport: one
// process as the parameter server, any number of processes as clients.
// It federates standard or adversarial training of a CNN3 model on the
// synthetic CIFAR10-S workload across real HTTP.
//
// Server:
//
//	fldist -serve -addr :8080 -quorum 3
//
// Clients (each simulating one participant's shard):
//
//	fldist -connect http://localhost:8080 -client 0 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 1 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 2 -clients 3 -rounds 5
//
// Passing -bits (2..8) on a client switches it to the compressed delta wire
// protocol of docs/WIRE.md: quantized pulls and error-fed quantized delta
// pushes, negotiated per client, with -chunk values per quantization scale.
// The server accepts compressed and raw clients in the same round and
// reports bytes-on-wire on GET /stats (and in its shutdown log line).
//
// The server aggregates under parameter-range sharding (-shards, default
// GOMAXPROCS; the model is bit-identical at any count) and exposes
// per-update admit-latency percentiles on /stats. -pprof serves
// net/http/pprof for live profiling of either role.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "run the parameter server")
		addr     = flag.String("addr", ":8080", "server listen address")
		quorum   = flag.Int("quorum", 2, "updates per aggregation round")
		connect  = flag.String("connect", "", "server URL for client mode")
		clientID = flag.Int("client", 0, "this client's index")
		clients  = flag.Int("clients", 2, "total number of clients (data partition)")
		rounds   = flag.Int("rounds", 5, "rounds to participate in")
		pgd      = flag.Int("pgd", 3, "PGD steps for adversarial training (0 = standard)")
		seed     = flag.Int64("seed", 1, "random seed (must match across processes)")
		bits     = flag.Int("bits", 0, "compressed delta wire protocol bit width, 2..8 (0 = raw gob)")
		chunk    = flag.Int("chunk", 0, "values per quantization scale (0 = default 256)")
		shards   = flag.Int("shards", 0, "server aggregation shards (0 = GOMAXPROCS; result is identical at any count)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for live profiling")
	)
	flag.Parse()

	if *pprof != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank
			// import; this listener serves only them.
			log.Printf("pprof on %s", *pprof)
			log.Println(http.ListenAndServe(*pprof, nil))
		}()
	}

	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(*seed)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *serve:
		m := build()
		srv := fldist.NewServer(nn.ExportParams(m), nn.ExportBNStats(m), *quorum,
			fldist.WithShards(*shards))
		log.Printf("parameter server on %s (quorum %d, model %s, %d params, %d shards)",
			*addr, *quorum, m.Label, nn.NumParams(m), srv.Shards())
		if err := srv.ListenAndServe(ctx, *addr); err != nil {
			log.Fatal(err)
		}
		st := srv.Stats()
		log.Printf("parameter server shut down after %d completed rounds", st.RoundsCompleted)
		log.Printf("wire traffic: in %d B raw + %d B compressed, out %d B raw + %d B compressed (%d raw / %d compressed updates)",
			st.BytesInRaw, st.BytesInCompressed, st.BytesOutRaw, st.BytesOutCompressed,
			st.UpdatesRaw, st.UpdatesCompressed)
		log.Printf("admit latency: p50 %.0fµs p99 %.0fµs over %d shards",
			st.AdmitP50Micros, st.AdmitP99Micros, st.Shards)

	case *connect != "":
		cfg := fl.DefaultConfig()
		cfg.LocalIters = 10
		cfg.Batch = 16
		train, _ := data.Generate(data.CIFAR10SConfig(60, 10, *seed))
		subs := data.PartitionNonIID(train, data.DefaultPartition(*clients, *seed))
		if *clientID < 0 || *clientID >= len(subs) {
			log.Fatalf("client index %d out of range [0,%d)", *clientID, len(subs))
		}
		c := &fldist.Client{
			ID:       *clientID,
			BaseURL:  *connect,
			HTTP:     &http.Client{Timeout: 30 * time.Second},
			Model:    build(),
			Subset:   subs[*clientID],
			Cfg:      cfg,
			Rng:      rand.New(rand.NewSource(*seed + int64(*clientID))),
			PGDSteps: *pgd,
		}
		wire := "raw gob"
		if *bits != 0 {
			c.Compression = &fldist.Compression{Bits: *bits, Chunk: *chunk}
			wire = fmt.Sprintf("%d-bit error-fed deltas", *bits)
		}
		log.Printf("client %d: %d local samples, PGD-%d, %d rounds, wire: %s",
			*clientID, subs[*clientID].Len(), *pgd, *rounds, wire)
		if err := c.RunRounds(ctx, *rounds, 0.04); err != nil {
			log.Fatal(err)
		}
		log.Printf("client %d: done", *clientID)

	default:
		fmt.Println("specify -serve or -connect <url>; see -h")
	}
}
