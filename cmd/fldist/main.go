// Command fldist runs the distributed federated-training transport: one
// process as the parameter server, any number of processes as clients.
// It federates standard or adversarial training of a CNN3 model on the
// synthetic CIFAR10-S workload across real HTTP.
//
// Server:
//
//	fldist -serve -addr :8080 -quorum 3
//
// Clients (each simulating one participant's shard):
//
//	fldist -connect http://localhost:8080 -client 0 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 1 -clients 3 -rounds 5
//	fldist -connect http://localhost:8080 -client 2 -clients 3 -rounds 5
//
// Passing -bits (2..8) on a client switches it to the compressed delta wire
// protocol of docs/WIRE.md: quantized pulls and error-fed quantized delta
// pushes, negotiated per client, with -chunk values per quantization scale.
// The server accepts compressed and raw clients in the same round and
// reports bytes-on-wire on GET /stats (and in its shutdown log line).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "run the parameter server")
		addr     = flag.String("addr", ":8080", "server listen address")
		quorum   = flag.Int("quorum", 2, "updates per aggregation round")
		connect  = flag.String("connect", "", "server URL for client mode")
		clientID = flag.Int("client", 0, "this client's index")
		clients  = flag.Int("clients", 2, "total number of clients (data partition)")
		rounds   = flag.Int("rounds", 5, "rounds to participate in")
		pgd      = flag.Int("pgd", 3, "PGD steps for adversarial training (0 = standard)")
		seed     = flag.Int64("seed", 1, "random seed (must match across processes)")
		bits     = flag.Int("bits", 0, "compressed delta wire protocol bit width, 2..8 (0 = raw gob)")
		chunk    = flag.Int("chunk", 0, "values per quantization scale (0 = default 256)")
	)
	flag.Parse()

	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(*seed)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *serve:
		m := build()
		srv := fldist.NewServer(nn.ExportParams(m), nn.ExportBNStats(m), *quorum)
		log.Printf("parameter server on %s (quorum %d, model %s, %d params)",
			*addr, *quorum, m.Label, nn.NumParams(m))
		if err := srv.ListenAndServe(ctx, *addr); err != nil {
			log.Fatal(err)
		}
		st := srv.Stats()
		log.Printf("parameter server shut down after %d completed rounds", st.RoundsCompleted)
		log.Printf("wire traffic: in %d B raw + %d B compressed, out %d B raw + %d B compressed (%d raw / %d compressed updates)",
			st.BytesInRaw, st.BytesInCompressed, st.BytesOutRaw, st.BytesOutCompressed,
			st.UpdatesRaw, st.UpdatesCompressed)

	case *connect != "":
		cfg := fl.DefaultConfig()
		cfg.LocalIters = 10
		cfg.Batch = 16
		train, _ := data.Generate(data.CIFAR10SConfig(60, 10, *seed))
		subs := data.PartitionNonIID(train, data.DefaultPartition(*clients, *seed))
		if *clientID < 0 || *clientID >= len(subs) {
			log.Fatalf("client index %d out of range [0,%d)", *clientID, len(subs))
		}
		c := &fldist.Client{
			ID:       *clientID,
			BaseURL:  *connect,
			HTTP:     &http.Client{Timeout: 30 * time.Second},
			Model:    build(),
			Subset:   subs[*clientID],
			Cfg:      cfg,
			Rng:      rand.New(rand.NewSource(*seed + int64(*clientID))),
			PGDSteps: *pgd,
		}
		wire := "raw gob"
		if *bits != 0 {
			c.Compression = &fldist.Compression{Bits: *bits, Chunk: *chunk}
			wire = fmt.Sprintf("%d-bit error-fed deltas", *bits)
		}
		log.Printf("client %d: %d local samples, PGD-%d, %d rounds, wire: %s",
			*clientID, subs[*clientID].Len(), *pgd, *rounds, wire)
		if err := c.RunRounds(ctx, *rounds, 0.04); err != nil {
			log.Fatal(err)
		}
		log.Printf("client %d: done", *clientID)

	default:
		fmt.Println("specify -serve or -connect <url>; see -h")
	}
}
