// Command fplint machine-checks the repository's concurrency and determinism
// invariants (docs/ARCHITECTURE.md, "Static analysis"): atomicfield,
// lockorder, determinism, sentinelerr and poolleak, with //lint:ignore
// hygiene enforced by the runner.
//
// Two modes share one engine (internal/lint):
//
//	fplint ./...                   # standalone, from the module root
//	go vet -vettool=$(pwd)/bin/fplint ./...   # driven by the go command
//
// Standalone mode resolves the patterns itself via `go list -export` and
// analyzes every matched package. Vet-tool mode speaks cmd/go's unitchecker
// protocol: -V=full prints the version for build caching, -flags advertises
// no extra flags, and otherwise the single argument is a *.cfg JSON file
// describing one package (sources, import map, export data) prepared by the
// go command.
//
// Exit status: 0 clean, 1 findings, 2 operational failure.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"fedprophet/internal/lint"
)

// version is the cache key `go vet` uses to decide whether prior results are
// still valid; bump it when analyzer behavior changes.
const version = "fplint-1"

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		fmt.Printf("fplint version %s\n", version)
		return
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		return
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runVet(args[0]))
	default:
		os.Exit(runStandalone(args))
	}
}

// runStandalone resolves the patterns (default ./...) and analyzes them all.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, lint.Analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			exit = 1
		}
	}
	return exit
}

// vetConfig is the subset of cmd/go's unitchecker *.cfg fields fplint needs.
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the one package described by the go command's cfg file.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fplint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command expects the facts file regardless; fplint carries no
	// cross-package facts, so an empty one satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Module:  moduleOf(cfg.ImportPath),
		Fset:    fset,
	}
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.MarkTestFile(f)
		}
	}
	pkg.Files = files
	if len(files) > 0 {
		pkg.Dir = filepath.Dir(fset.Position(files[0].Pos()).Filename)
	}
	tpkg, info, err := lint.Check(fset, cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkg.Types = tpkg
	pkg.Info = info

	diags, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// moduleOf guesses the module path for in-module detection: the go command's
// cfg does not carry it, and for this repository the import path's first
// element is the module.
func moduleOf(importPath string) string {
	if i := strings.IndexByte(importPath, '/'); i >= 0 {
		return importPath[:i]
	}
	return importPath
}
