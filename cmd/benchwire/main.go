// Command benchwire measures the compressed delta wire protocol end to end:
// it runs the real HTTP parameter server and a small client fleet through
// synchronous federated rounds at each bit width, reads the server's
// /stats byte counters, and records bytes-per-round and wall-clock round
// latency to a JSON baseline.
//
//	go run ./cmd/benchwire -out BENCH_wire.json
//
// The headline figure is reduction_vs_raw at 8 bits: how many times fewer
// model-plane bytes (pulls + pushes, all clients) one round costs under the
// compressed codec than under the raw gob protocol, on the same seed model
// and workload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

// result is one bit-width's measurement.
type result struct {
	Bits            string  `json:"bits"` // "raw", "8", "4", "2"
	Chunk           int     `json:"chunk,omitempty"`
	BytesPerRound   int64   `json:"bytes_per_round"`
	BytesIn         int64   `json:"bytes_in"`
	BytesOut        int64   `json:"bytes_out"`
	RoundLatencyMS  float64 `json:"round_latency_ms"`
	ReductionVsRaw  float64 `json:"reduction_vs_raw"`
	RoundsCompleted int     `json:"rounds_completed"`
}

type report struct {
	Model         string   `json:"model"`
	Params        int      `json:"params"`
	BNStats       int      `json:"bn_stats"`
	Clients       int      `json:"clients"`
	Rounds        int      `json:"rounds"`
	Chunk         int      `json:"chunk"`
	GeneratedKind string   `json:"workload"`
	Results       []result `json:"results"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_wire.json", "output JSON path")
		clients = flag.Int("clients", 3, "client fleet size (= aggregation quorum)")
		rounds  = flag.Int("rounds", 3, "synchronous rounds per setting")
		chunk   = flag.Int("chunk", 0, "values per quantization scale (0 = default 256)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *clients < 1 || *rounds < 1 {
		log.Fatalf("benchwire: -clients (%d) and -rounds (%d) must be ≥ 1", *clients, *rounds)
	}

	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(*seed)))
	}
	train, _ := data.Generate(data.CIFAR10SConfig(40, 10, *seed))
	subs := data.PartitionNonIID(train, data.DefaultPartition(*clients, *seed))
	m := build()

	rep := report{
		Model:         m.Label,
		Params:        nn.NumParams(m),
		BNStats:       len(nn.ExportBNStats(m)),
		Clients:       *clients,
		Rounds:        *rounds,
		Chunk:         *chunk,
		GeneratedKind: "CIFAR10-S 40/class",
	}
	log.Printf("benchwire: %s, %d params + %d bn stats, %d clients, %d rounds/setting",
		rep.Model, rep.Params, rep.BNStats, *clients, *rounds)

	var rawBytes int64
	for _, bits := range []int{0, 8, 4, 2} {
		r := runSetting(build, subs, *clients, *rounds, bits, *chunk, *seed)
		if bits == 0 {
			rawBytes = r.BytesPerRound
			r.ReductionVsRaw = 1
		} else if r.BytesPerRound > 0 {
			r.ReductionVsRaw = float64(rawBytes) / float64(r.BytesPerRound)
		}
		log.Printf("  bits=%-3s bytes/round=%-8d latency/round=%.1fms reduction=%.2fx",
			r.Bits, r.BytesPerRound, r.RoundLatencyMS, r.ReductionVsRaw)
		rep.Results = append(rep.Results, r)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// runSetting federates `rounds` synchronous rounds over real HTTP at one
// bit width (0 = raw gob) and returns the measured traffic and latency.
func runSetting(build func() *nn.Model, subs []*data.Subset, clients, rounds, bits, chunk int, seed int64) result {
	m := build()
	srv := fldist.NewServer(nn.ExportParams(m), nn.ExportBNStats(m), clients)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	cfg := fl.DefaultConfig()
	cfg.LocalIters = 4
	cfg.Batch = 16

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &fldist.Client{
				ID:      id,
				BaseURL: "http://" + ln.Addr().String(),
				HTTP:    &http.Client{Timeout: 30 * time.Second},
				Model:   build(),
				Subset:  subs[id],
				Cfg:     cfg,
				Rng:     rand.New(rand.NewSource(seed + int64(id))),
			}
			if bits != 0 {
				c.Compression = &fldist.Compression{Bits: bits, Chunk: chunk}
			}
			errs[id] = c.RunRounds(ctx, rounds, 0.05)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for id, err := range errs {
		if err != nil {
			log.Fatalf("client %d: %v", id, err)
		}
	}
	st := srv.Stats()
	cancel()
	<-done

	label := "raw"
	if bits != 0 {
		label = fmt.Sprintf("%d", bits)
	}
	in := st.BytesInRaw + st.BytesInCompressed
	outB := st.BytesOutRaw + st.BytesOutCompressed
	return result{
		Bits:            label,
		Chunk:           chunk,
		BytesPerRound:   (in + outB) / int64(st.RoundsCompleted),
		BytesIn:         in,
		BytesOut:        outB,
		RoundLatencyMS:  float64(elapsed.Milliseconds()) / float64(st.RoundsCompleted),
		RoundsCompleted: st.RoundsCompleted,
	}
}
