// Command benchwire measures the compressed delta wire protocol end to end:
// it runs the real HTTP parameter server and a small client fleet through
// synchronous federated rounds at each codec setting, reads the server's
// /stats byte counters, and records bytes-per-round and wall-clock round
// latency to a JSON baseline.
//
//	go run ./cmd/benchwire -out BENCH_wire.json
//
// Every setting runs one unmeasured warmup round first, so the recorded
// bytes are the steady state: a delta-downlink fleet pays its one-time cold
// pull in warmup and the measured rounds show the per-round catch-up cost.
// The headline figures are reduction_vs_raw (dense quantization) and the
// per-direction uplink/downlink_reduction_vs_dense of the sparse and
// delta-downlink rows: how much the top-k diet compounds on top of dense
// quantization at the same bit width.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

// runMeta records the machine and toolchain the numbers were measured on,
// mirroring BENCH_serve.json so wire reruns stay byte-comparable. The
// timestamp is passed in (-timestamp, typically `date -u` from make) so a
// re-run with identical inputs produces identical bytes by default.
type runMeta struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	Timestamp  string `json:"timestamp,omitempty"`
}

// result is one codec setting's measurement. The *_reduction_vs_dense
// fields compare a sparse or delta-downlink row against the dense row at
// the same bit width, per direction — the "additional ≥5×" the sparse
// forms are for.
type result struct {
	Bits            string  `json:"bits"` // "raw", "8", "4+topk", "4+topk+delta", ...
	Chunk           int     `json:"chunk,omitempty"`
	TopK            int     `json:"topk,omitempty"`
	DeltaDownlink   bool    `json:"delta_downlink,omitempty"`
	BytesPerRound   int64   `json:"bytes_per_round"`
	BytesIn         int64   `json:"bytes_in"`
	BytesOut        int64   `json:"bytes_out"`
	BytesInSparse   int64   `json:"bytes_in_sparse,omitempty"`
	BytesOutDelta   int64   `json:"bytes_out_delta,omitempty"`
	BytesOutCold    int64   `json:"bytes_out_cold,omitempty"`
	RoundLatencyMS  float64 `json:"round_latency_ms"`
	ReductionVsRaw  float64 `json:"reduction_vs_raw"`
	UplinkRedDense  float64 `json:"uplink_reduction_vs_dense,omitempty"`
	DownlinkRedDens float64 `json:"downlink_reduction_vs_dense,omitempty"`
	RoundsCompleted int     `json:"rounds_completed"`
}

type report struct {
	Meta          runMeta  `json:"meta"`
	Model         string   `json:"model"`
	Params        int      `json:"params"`
	BNStats       int      `json:"bn_stats"`
	Clients       int      `json:"clients"`
	Rounds        int      `json:"rounds"`
	Chunk         int      `json:"chunk"`
	TopK          int      `json:"topk"`
	GeneratedKind string   `json:"workload"`
	Results       []result `json:"results"`
}

// setting is one benchmark row's codec configuration.
type setting struct {
	label     string
	comp      *fldist.Compression
	denseBits int // dense row at the same bits, for the per-direction comparison
}

func main() {
	var (
		out       = flag.String("out", "BENCH_wire.json", "output JSON path")
		clients   = flag.Int("clients", 3, "client fleet size (= aggregation quorum)")
		rounds    = flag.Int("rounds", 3, "measured synchronous rounds per setting (after 1 warmup round)")
		chunk     = flag.Int("chunk", 0, "values per quantization scale (0 = default 256)")
		topk      = flag.Int("topk", 0, "top-k coordinates per sparse uplink frame (0 = params/64)")
		seed      = flag.Int64("seed", 1, "random seed")
		timestamp = flag.String("timestamp", "", "run timestamp recorded in the output metadata (e.g. `date -u +%Y-%m-%dT%H:%M:%SZ`)")
	)
	flag.Parse()
	if *clients < 1 || *rounds < 1 {
		log.Fatalf("benchwire: -clients (%d) and -rounds (%d) must be ≥ 1", *clients, *rounds)
	}

	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(*seed)))
	}
	train, _ := data.Generate(data.CIFAR10SConfig(40, 10, *seed))
	subs := data.PartitionNonIID(train, data.DefaultPartition(*clients, *seed))
	m := build()
	k := *topk
	if k == 0 {
		k = nn.NumParams(m) / 64
	}

	rep := report{
		Meta: runMeta{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
			Timestamp:  *timestamp,
		},
		Model:         m.Label,
		Params:        nn.NumParams(m),
		BNStats:       len(nn.ExportBNStats(m)),
		Clients:       *clients,
		Rounds:        *rounds,
		Chunk:         *chunk,
		TopK:          k,
		GeneratedKind: "CIFAR10-S 40/class",
	}
	log.Printf("benchwire: %s, %d params + %d bn stats, %d clients, %d rounds/setting, topk=%d",
		rep.Model, rep.Params, rep.BNStats, *clients, *rounds, k)

	settings := []setting{
		{label: "raw"},
		{label: "8", comp: &fldist.Compression{Bits: 8, Chunk: *chunk}},
		{label: "4", comp: &fldist.Compression{Bits: 4, Chunk: *chunk}},
		{label: "2", comp: &fldist.Compression{Bits: 2, Chunk: *chunk}},
		{label: "8+topk", comp: &fldist.Compression{Bits: 8, Chunk: *chunk, TopK: k}, denseBits: 8},
		{label: "4+topk", comp: &fldist.Compression{Bits: 4, Chunk: *chunk, TopK: k}, denseBits: 4},
		{label: "8+topk+delta", comp: &fldist.Compression{Bits: 8, Chunk: *chunk, TopK: k, Delta: true}, denseBits: 8},
		{label: "4+topk+delta", comp: &fldist.Compression{Bits: 4, Chunk: *chunk, TopK: k, Delta: true}, denseBits: 4},
	}

	var rawBytes int64
	dense := map[int]result{} // dense rows by bits, for per-direction comparisons
	for _, s := range settings {
		r := runSetting(build, subs, *clients, *rounds, s, *seed)
		if s.comp == nil {
			rawBytes = r.BytesPerRound
			r.ReductionVsRaw = 1
		} else if r.BytesPerRound > 0 {
			r.ReductionVsRaw = float64(rawBytes) / float64(r.BytesPerRound)
		}
		if s.comp != nil && s.comp.TopK == 0 {
			dense[s.comp.Bits] = r
		}
		if d, ok := dense[s.denseBits]; ok && s.denseBits != 0 {
			if r.BytesIn > 0 {
				r.UplinkRedDense = float64(d.BytesIn) / float64(r.BytesIn)
			}
			if r.BytesOut > 0 {
				r.DownlinkRedDens = float64(d.BytesOut) / float64(r.BytesOut)
			}
		}
		log.Printf("  %-14s bytes/round=%-8d latency/round=%.1fms reduction=%.2fx up-vs-dense=%.2fx down-vs-dense=%.2fx",
			r.Bits, r.BytesPerRound, r.RoundLatencyMS, r.ReductionVsRaw, r.UplinkRedDense, r.DownlinkRedDens)
		rep.Results = append(rep.Results, r)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// runSetting federates one warmup round plus `rounds` measured synchronous
// rounds over real HTTP at one codec setting (comp == nil is raw gob) and
// returns the steady-state traffic and latency — counters diffed across the
// measured phase only, so one-time costs (delta cold pulls) stay out of the
// per-round figures.
func runSetting(build func() *nn.Model, subs []*data.Subset, clients, rounds int, s setting, seed int64) result {
	m := build()
	srv := fldist.NewServer(nn.ExportParams(m), nn.ExportBNStats(m), clients)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	cfg := fl.DefaultConfig()
	cfg.LocalIters = 4
	cfg.Batch = 16

	fleet := make([]*fldist.Client, clients)
	for id := 0; id < clients; id++ {
		fleet[id] = &fldist.Client{
			ID:      id,
			BaseURL: "http://" + ln.Addr().String(),
			HTTP:    &http.Client{Timeout: 30 * time.Second},
			Model:   build(),
			Subset:  subs[id],
			Cfg:     cfg,
			Rng:     rand.New(rand.NewSource(seed + int64(id))),
		}
		if s.comp != nil {
			c := *s.comp
			fleet[id].Compression = &c
		}
	}

	phase := func(n int) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for id, c := range fleet {
			wg.Add(1)
			go func(id int, c *fldist.Client) {
				defer wg.Done()
				errs[id] = c.RunRounds(ctx, n, 0.05)
			}(id, c)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				log.Fatalf("%s client %d: %v", s.label, id, err)
			}
		}
		return time.Since(start)
	}

	phase(1) // warmup: negotiation, cache builds, delta cold pulls
	base := srv.Stats()
	elapsed := phase(rounds)
	st := srv.Stats()
	cancel()
	<-done

	in := (st.BytesInRaw + st.BytesInCompressed) - (base.BytesInRaw + base.BytesInCompressed)
	outB := (st.BytesOutRaw + st.BytesOutCompressed) - (base.BytesOutRaw + base.BytesOutCompressed)
	measured := st.RoundsCompleted - base.RoundsCompleted
	ch := 0
	if s.comp != nil {
		ch = s.comp.Chunk
	}
	r := result{
		Bits:            s.label,
		Chunk:           ch,
		BytesPerRound:   (in + outB) / int64(measured),
		BytesIn:         in,
		BytesOut:        outB,
		BytesInSparse:   st.BytesInSparse - base.BytesInSparse,
		BytesOutDelta:   st.BytesOutDelta - base.BytesOutDelta,
		BytesOutCold:    st.BytesOutCold - base.BytesOutCold,
		RoundLatencyMS:  float64(elapsed.Milliseconds()) / float64(measured),
		RoundsCompleted: measured,
	}
	if s.comp != nil {
		r.TopK = s.comp.TopK
		r.DeltaDownlink = s.comp.Delta
	}
	return r
}
