// Command checkdocs verifies the repository's markdown cross-references:
// every relative link target in the given files (or in every .md file under
// the given directories) must exist on disk. External links (http, https,
// mailto) and pure in-page anchors are skipped; anchors on relative links
// are stripped before the existence check. Dead links are listed and the
// command exits non-zero, which is how `make check-docs` (part of `make ci`)
// fails the build on documentation rot.
//
// With -gosrc it also walks that root for Go sources and checks every *.md
// file named inside a Go comment — package docs love to cite design
// documents, and a citation of a file that was never written (or has since
// been renamed) is the same class of rot as a dead markdown link. A
// reference resolves if it exists relative to either the Go file's own
// directory or the -gosrc root (comments conventionally name repo-root
// paths like docs/WIRE.md).
//
// -gosrc additionally turns on test-name checking: every Test/Benchmark/Fuzz
// token the markdown files mention (docs/ARCHITECTURE.md cites tests as
// evidence for its claims) must be a function actually declared in *_test.go
// under the root, so renaming or deleting a test breaks the build until the
// document catches up.
//
//	go run ./cmd/checkdocs -gosrc . README.md ROADMAP.md docs
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repository and intentionally not handled.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdRefRe matches a markdown-file reference inside prose: a path-ish token
// ending in .md. The first character must be alphanumeric so glob patterns
// ("*.md") and a bare ".md" are not picked up.
var mdRefRe = regexp.MustCompile(`[A-Za-z0-9_][A-Za-z0-9_./-]*\.md\b`)

// testTokenRe matches a Go test-function name cited in prose: the standard
// Test/Benchmark/Fuzz prefix followed by an exported-style name, which is
// also what the testing package itself requires of a runnable test.
var testTokenRe = regexp.MustCompile(`\b(?:Test|Benchmark|Fuzz)[A-Z][A-Za-z0-9_]*`)

func main() {
	gosrc := flag.String("gosrc", "",
		"also check *.md references in Go comments under this root (resolved against the file's directory and this root)")
	flag.Parse()
	if flag.NArg() < 1 && *gosrc == "" {
		fmt.Fprintln(os.Stderr, "usage: checkdocs [-gosrc root] <file-or-dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range flag.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
	}

	// With a Go root available, markdown claims about tests are checkable:
	// collect every declared Test/Benchmark/Fuzz function up front.
	var testDecls map[string]bool
	if *gosrc != "" {
		var err error
		testDecls, err = collectTestDecls(*gosrc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
	}

	dead := 0
	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
		if testDecls != nil {
			for _, tok := range testTokenRe.FindAllString(string(body), -1) {
				if !testDecls[tok] {
					fmt.Printf("%s: names test %q but no *_test.go declares it\n", file, tok)
					dead++
				}
			}
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-file anchor: docs/WIRE.md#header → docs/WIRE.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: dead link %q (resolved %s)\n", file, m[1], resolved)
				dead++
			}
		}
	}

	goFiles := 0
	if *gosrc != "" {
		n, d, err := checkGoComments(*gosrc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
		goFiles, dead = n, dead+d
	}

	if dead > 0 {
		fmt.Printf("checkdocs: %d dead link(s) in %d markdown + %d Go file(s)\n", dead, len(files), goFiles)
		os.Exit(1)
	}
	fmt.Printf("checkdocs: %d markdown + %d Go file(s), all *.md references resolve\n", len(files), goFiles)
}

// collectTestDecls walks root for *_test.go files and returns the names of
// every top-level Test/Benchmark/Fuzz function they declare.
func collectTestDecls(root string) (map[string]bool, error) {
	decls := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if testTokenRe.FindString(fd.Name.Name) == fd.Name.Name {
				decls[fd.Name.Name] = true
			}
		}
		return nil
	})
	return decls, err
}

// checkGoComments walks root for Go sources and reports every *.md file
// named in a comment that exists neither relative to the source file's
// directory nor relative to root. It parses comments with go/parser, so
// string literals that merely look like prose are never scanned.
func checkGoComments(root string) (checked, dead int, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS and tooling directories.
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		checked++
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, ref := range mdRefRe.FindAllString(c.Text, -1) {
					if _, err := os.Stat(filepath.Join(filepath.Dir(path), ref)); err == nil {
						continue
					}
					if _, err := os.Stat(filepath.Join(root, ref)); err == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					fmt.Printf("%s:%d: dead markdown reference %q in comment\n", path, pos.Line, ref)
					dead++
				}
			}
		}
		return nil
	})
	return checked, dead, err
}
