// Command checkdocs verifies the repository's markdown cross-references:
// every relative link target in the given files (or in every .md file under
// the given directories) must exist on disk. External links (http, https,
// mailto) and pure in-page anchors are skipped; anchors on relative links
// are stripped before the existence check. Dead links are listed and the
// command exits non-zero, which is how `make check-docs` (part of `make ci`)
// fails the build on documentation rot.
//
//	go run ./cmd/checkdocs README.md ROADMAP.md docs
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repository and intentionally not handled.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdocs <file-or-dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
	}

	dead := 0
	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-file anchor: docs/WIRE.md#header → docs/WIRE.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: dead link %q (resolved %s)\n", file, m[1], resolved)
				dead++
			}
		}
	}
	if dead > 0 {
		fmt.Printf("checkdocs: %d dead link(s) in %d file(s)\n", dead, len(files))
		os.Exit(1)
	}
	fmt.Printf("checkdocs: %d file(s), all relative links resolve\n", len(files))
}
